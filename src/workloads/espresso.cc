/**
 * @file
 * "espresso" workload: two-level logic cube operations.
 *
 * Recreates espresso's dominant kernels: pairwise cube intersection
 * (bitwise AND over the cube words with an emptiness test) and
 * containment checks over a cover, all branch-free in the innermost
 * word loop.
 */

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace rcsim::workloads
{

ir::Module
buildEspresso()
{
    constexpr int C = 88; // cubes in the cover
    constexpr int W = 8;  // words per cube

    ir::Module m;
    m.name = "espresso";

    SplitMix rng(0xe59);
    std::vector<Word> cubes(C * W);
    for (auto &w : cubes) {
        // Dense cubes: mostly-ones bit vectors as in espresso's
        // positional cube notation.
        w = static_cast<Word>(rng.next() | rng.next());
    }
    int gc = makeIntArray(m, "cubes", cubes);

    int fi = m.addFunction("main");
    ir::Function &fn = m.fn(fi);
    fn.returnsValue = true;
    fn.retClass = RegClass::Int;
    m.entryFunction = fi;

    IRBuilder b(m, fi);
    VReg cbase = b.addrOf(gc);
    VReg ibound = b.iconst(C - 1);
    VReg jbound = b.iconst(C);
    VReg wbound = b.iconst(W);
    VReg one = b.iconst(1);

    VReg empties = b.temp(RegClass::Int);
    b.assignI(empties, 0);
    VReg contained = b.temp(RegClass::Int);
    b.assignI(contained, 0);
    VReg checksum = b.temp(RegClass::Int);
    b.assignI(checksum, 0);
    VReg ibase = b.temp(RegClass::Int);
    VReg jreg = b.temp(RegClass::Int);
    VReg jbase = b.temp(RegClass::Int);

    DoLoop iloop(b, 0, ibound);
    {
        VReg i = iloop.iv();
        b.assignRR(Opc::Add, ibase,
                   cbase, b.slli(b.slli(i, 3), 2)); // i*W*4
        b.assignRI(Opc::AddI, jreg, i, 1);
        int jbody = b.newBlock();
        int jexit = b.newBlock();
        b.jmp(jbody);

        b.setBlock(jbody);
        b.assignRR(Opc::Add, jbase,
                   cbase, b.slli(b.slli(jreg, 3), 2));
        {
            // Intersection emptiness and containment, fused over the
            // cube words (branch free).
            VReg inter = b.temp(RegClass::Int);
            b.assignI(inter, 0);
            VReg not_cont = b.temp(RegClass::Int);
            b.assignI(not_cont, 0);
            DoLoop wloop(b, 0, wbound);
            {
                VReg w = wloop.iv();
                VReg off = b.slli(w, 2);
                VReg aw = b.loadW(b.add(ibase, off), 0,
                                  MemRef::global(gc));
                VReg bw = b.loadW(b.add(jbase, off), 0,
                                  MemRef::global(gc));
                VReg both = b.and_(aw, bw);
                b.assignRR(Opc::Or, inter, inter, both);
                // a contained in b <=> a & ~b == 0 everywhere
                VReg notb = b.rr(Opc::Nor, bw, bw);
                b.assignRR(Opc::Or, not_cont, not_cont,
                           b.and_(aw, notb));
            }
            wloop.finish();
            VReg zero = b.iconst(0);
            VReg is_empty = b.rr(Opc::Sltu, zero, inter);
            // is_empty currently = (inter != 0); invert.
            VReg empty = b.xor_(is_empty, one);
            b.assignRR(Opc::Add, empties, empties, empty);
            VReg nc = b.rr(Opc::Sltu, zero, not_cont);
            VReg cont = b.xor_(nc, one);
            b.assignRR(Opc::Add, contained, contained, cont);
            b.assignRR(Opc::Xor, checksum, checksum,
                       b.add(inter, jreg));
        }
        b.assignRI(Opc::AddI, jreg, jreg, 1);
        b.br(Opc::Blt, jreg, jbound, jbody, jexit);

        b.setBlock(jexit);
    }
    iloop.finish();

    VReg sum = b.add(checksum, b.slli(empties, 8));
    sum = b.add(sum, b.slli(contained, 16));
    b.ret(sum);
    return m;
}

} // namespace rcsim::workloads
