/**
 * @file
 * Register identities for the RCM instruction set.
 *
 * The ISA has two architectural register files (integer and floating
 * point), mirroring the MIPS R2000 base of the paper.  A Reg names a
 * register by class and index.  Depending on context the index is:
 *
 *  - before register allocation: a virtual register number,
 *  - after allocation: a physical register number (0..255 with RC),
 *  - in final with-RC machine code: a register *map index* (0..m-1)
 *    that the hardware resolves through the register mapping table.
 */

#ifndef RCSIM_ISA_REG_HH
#define RCSIM_ISA_REG_HH

#include <cstdint>
#include <string>

namespace rcsim::isa
{

/** The two architectural register classes (Section 5.2). */
enum class RegClass : std::uint8_t { Int = 0, Fp = 1 };

/** Number of register classes. */
constexpr int numRegClasses = 2;

/** Physical register file capacity with RC support (Section 5.2). */
constexpr int rcTotalRegisters = 256;

/** A register reference: class plus index. */
struct Reg
{
    RegClass cls = RegClass::Int;
    std::uint16_t idx = 0;

    constexpr Reg() = default;
    constexpr Reg(RegClass c, std::uint16_t i) : cls(c), idx(i) {}

    constexpr bool
    operator==(const Reg &o) const
    {
        return cls == o.cls && idx == o.idx;
    }
    constexpr bool
    operator!=(const Reg &o) const
    {
        return !(*this == o);
    }
    constexpr bool
    operator<(const Reg &o) const
    {
        if (cls != o.cls)
            return static_cast<int>(cls) < static_cast<int>(o.cls);
        return idx < o.idx;
    }
};

/** Integer register shorthand. */
constexpr Reg
ireg(std::uint16_t idx)
{
    return Reg(RegClass::Int, idx);
}

/** Floating-point register shorthand. */
constexpr Reg
freg(std::uint16_t idx)
{
    return Reg(RegClass::Fp, idx);
}

/** "r7" / "f12" style rendering. */
std::string regName(const Reg &r);

} // namespace rcsim::isa

#endif // RCSIM_ISA_REG_HH
