#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace rcsim::isa
{

namespace
{

/** Cursor over one line of assembly text. */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : line_(line) {}

    void
    skipSpace()
    {
        while (pos_ < line_.size() &&
               (std::isspace(static_cast<unsigned char>(line_[pos_])) ||
                line_[pos_] == ','))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= line_.size();
    }

    /** Next identifier-like token ([A-Za-z0-9_.+-]). */
    std::string
    token()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < line_.size() && !std::isspace(static_cast<unsigned
                   char>(line_[pos_])) && line_[pos_] != ',')
            ++pos_;
        return line_.substr(start, pos_ - start);
    }

  private:
    const std::string &line_;
    std::size_t pos_ = 0;
};

struct PendingRef
{
    std::size_t instrIndex;
    std::string label;
    bool isCall;
    int lineNo;
};

bool
parseReg(const std::string &tok, Reg &out)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'f'))
        return false;
    for (std::size_t i = 1; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    out.cls = tok[0] == 'r' ? RegClass::Int : RegClass::Fp;
    out.idx = static_cast<std::uint16_t>(std::stoi(tok.substr(1)));
    return true;
}

bool
parseImm(const std::string &tok, Word &out)
{
    if (tok.empty())
        return false;
    std::size_t i = tok[0] == '-' || tok[0] == '+' ? 1 : 0;
    if (i >= tok.size())
        return false;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        out = static_cast<Word>(std::stoll(tok, nullptr, 16));
        return true;
    }
    for (std::size_t k = i; k < tok.size(); ++k)
        if (!std::isdigit(static_cast<unsigned char>(tok[k])))
            return false;
    out = static_cast<Word>(std::stoll(tok));
    return true;
}

bool
parsePrefixed(const std::string &tok, char prefix, std::uint16_t &out)
{
    if (tok.size() < 2 || tok[0] != prefix)
        return false;
    for (std::size_t i = 1; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    out = static_cast<std::uint16_t>(std::stoi(tok.substr(1)));
    return true;
}

} // namespace

AsmResult
assemble(const std::string &source)
{
    AsmResult result;
    Program &prog = result.program;

    std::map<std::string, std::int32_t> labels;
    std::vector<PendingRef> pending;

    auto fail = [&](int line_no, const std::string &msg) {
        std::ostringstream os;
        os << "line " << line_no << ": " << msg;
        result.error = os.str();
    };

    std::istringstream in(source);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        // Strip comments.
        auto hash = raw.find('#');
        std::string line =
            hash == std::string::npos ? raw : raw.substr(0, hash);
        // Skip blank lines.
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;

        LineParser lp(line);
        std::string first = lp.token();

        if (first == "func") {
            std::string name = lp.token();
            if (name.empty() || name.back() != ':')
                return fail(line_no, "expected 'func name:'"), result;
            name.pop_back();
            if (!prog.functions.empty())
                prog.functions.back().end =
                    static_cast<std::int32_t>(prog.code.size());
            FunctionInfo fi;
            fi.name = name;
            fi.entry = static_cast<std::int32_t>(prog.code.size());
            prog.functions.push_back(fi);
            labels[name] = fi.entry;
            continue;
        }

        if (first.size() > 1 && first.back() == ':') {
            std::string name = first.substr(0, first.size() - 1);
            if (labels.count(name))
                return fail(line_no, "duplicate label '" + name + "'"),
                       result;
            labels[name] = static_cast<std::int32_t>(prog.code.size());
            if (!lp.atEnd())
                return fail(line_no, "text after label"), result;
            continue;
        }

        // Instruction.  A '+' suffix on branch mnemonics marks a
        // predict-taken branch.
        bool predict_taken = false;
        std::string mnemonic = first;
        if (!mnemonic.empty() && mnemonic.back() == '+') {
            predict_taken = true;
            mnemonic.pop_back();
        }
        Opcode op = opcodeFromName(mnemonic);
        if (op == Opcode::NUM_OPCODES)
            return fail(line_no, "unknown opcode '" + mnemonic + "'"),
                   result;

        Instruction ins;
        ins.op = op;
        ins.predictTaken = predict_taken;
        const OpcodeInfo &info = opcodeInfo(op);

        if (info.isConnect) {
            std::string cls = lp.token();
            if (cls == "int")
                ins.connCls = RegClass::Int;
            else if (cls == "fp")
                ins.connCls = RegClass::Fp;
            else
                return fail(line_no, "connect needs 'int' or 'fp'"),
                       result;
            int pairs =
                (op == Opcode::CONNECT_USE || op == Opcode::CONNECT_DEF)
                    ? 1
                    : 2;
            ins.nconn = static_cast<std::uint8_t>(pairs);
            for (int k = 0; k < pairs; ++k) {
                std::string it = lp.token(), pt = lp.token();
                if (!parsePrefixed(it, 'i', ins.conn[k].mapIdx) ||
                    !parsePrefixed(pt, 'p', ins.conn[k].phys))
                    return fail(line_no,
                                "connect expects iN, pN pairs"),
                           result;
            }
            bool defs[2] = {false, false};
            if (op == Opcode::CONNECT_DEF)
                defs[0] = true;
            if (op == Opcode::CONNECT_DU)
                defs[0] = true;
            if (op == Opcode::CONNECT_DD)
                defs[0] = defs[1] = true;
            ins.conn[0].isDef = defs[0];
            ins.conn[1].isDef = defs[1];
            prog.code.push_back(ins);
            continue;
        }

        if (info.hasDst) {
            std::string t = lp.token();
            if (!parseReg(t, ins.dst) ||
                ins.dst.cls != info.dstClass)
                return fail(line_no, "bad destination '" + t + "'"),
                       result;
        }
        for (int k = 0; k < info.numSrcs; ++k) {
            std::string t = lp.token();
            if (!parseReg(t, ins.src[k]) ||
                ins.src[k].cls != info.srcClass[k])
                return fail(line_no, "bad source '" + t + "'"), result;
        }
        if (info.hasImm) {
            std::string t = lp.token();
            if (!parseImm(t, ins.imm))
                return fail(line_no, "bad immediate '" + t + "'"),
                       result;
        }
        if (info.isBranch || op == Opcode::J || op == Opcode::JSR) {
            std::string t = lp.token();
            if (t.empty())
                return fail(line_no, "missing target"), result;
            pending.push_back({prog.code.size(), t,
                               op == Opcode::JSR, line_no});
        }
        if (!lp.atEnd())
            return fail(line_no, "trailing operands"), result;
        prog.code.push_back(ins);
    }

    if (!prog.functions.empty())
        prog.functions.back().end =
            static_cast<std::int32_t>(prog.code.size());

    for (const PendingRef &ref : pending) {
        auto it = labels.find(ref.label);
        if (it == labels.end())
            return fail(ref.lineNo,
                        "undefined label '" + ref.label + "'"),
                   result;
        prog.code[ref.instrIndex].target = it->second;
    }

    prog.entry = 0;
    for (const FunctionInfo &fi : prog.functions)
        if (fi.name == "main")
            prog.entry = fi.entry;
    return result;
}

} // namespace rcsim::isa
