#include "isa/encoding.hh"

#include <sstream>

#include "support/logging.hh"

namespace rcsim::isa
{

namespace
{

// Primary 6-bit opcode assignments.  Opcode 0 is the R-format escape
// with an 11-bit function field holding the Opcode enum value.
constexpr MachineWord opRFormat = 0;

MachineWord
primaryOpcode(Opcode op, RegClass conn_cls)
{
    switch (op) {
      case Opcode::ADDI:
        return 1;
      case Opcode::ANDI:
        return 2;
      case Opcode::ORI:
        return 3;
      case Opcode::XORI:
        return 4;
      case Opcode::SLLI:
        return 5;
      case Opcode::SRLI:
        return 6;
      case Opcode::SRAI:
        return 7;
      case Opcode::SLTI:
        return 8;
      case Opcode::LI:
        return 9;
      case Opcode::LUI:
        return 10;
      case Opcode::LW:
        return 11;
      case Opcode::SW:
        return 12;
      case Opcode::LF:
        return 13;
      case Opcode::SF:
        return 14;
      case Opcode::TRAP:
        return 15;
      case Opcode::BEQ:
        return 16;
      case Opcode::BNE:
        return 17;
      case Opcode::BLT:
        return 18;
      case Opcode::BGE:
        return 19;
      case Opcode::BLE:
        return 20;
      case Opcode::BGT:
        return 21;
      case Opcode::J:
        return 22;
      case Opcode::JSR:
        return 23;
      case Opcode::CONNECT_USE:
        return 24;
      case Opcode::CONNECT_DEF:
        return 25;
      case Opcode::CONNECT_UU:
        return conn_cls == RegClass::Int ? 26 : 27;
      case Opcode::CONNECT_DU:
        return conn_cls == RegClass::Int ? 28 : 29;
      case Opcode::CONNECT_DD:
        return conn_cls == RegClass::Int ? 30 : 31;
      default:
        return opRFormat;
    }
}

bool
fitsSigned(Word v, int bits)
{
    Word lo = -(Word(1) << (bits - 1));
    Word hi = (Word(1) << (bits - 1)) - 1;
    return v >= lo && v <= hi;
}

MachineWord
field(MachineWord v, int shift)
{
    return v << shift;
}

} // namespace

EncodeResult
encode(const Instruction &ins, std::int32_t pc)
{
    const OpcodeInfo &info = ins.info();
    EncodeResult r;

    auto check_reg = [&](const Reg &reg) {
        if (reg.idx >= 32)
            r.error = EncodeError::RegisterTooHigh;
        return MachineWord(reg.idx & 0x1f);
    };

    if (info.isConnect) {
        MachineWord op6 = primaryOpcode(ins.op, ins.connCls);
        MachineWord w = field(op6, 26);
        if (ins.nconn == 1) {
            if (ins.conn[0].mapIdx >= 32) {
                r.error = EncodeError::RegisterTooHigh;
                r.errorConn = 0;
                return r;
            }
            if (ins.conn[0].phys >= 256) {
                r.error = EncodeError::PhysTooHigh;
                r.errorConn = 0;
                return r;
            }
            w |= field(ins.connCls == RegClass::Fp ? 1 : 0, 25);
            w |= field(ins.conn[0].mapIdx & 0x1f, 20);
            w |= field(ins.conn[0].phys & 0xff, 12);
        } else {
            for (int k = 0; k < 2; ++k) {
                if (ins.conn[k].mapIdx >= 32) {
                    r.error = EncodeError::RegisterTooHigh;
                    r.errorConn = k;
                    return r;
                }
                if (ins.conn[k].phys >= 256) {
                    r.error = EncodeError::PhysTooHigh;
                    r.errorConn = k;
                    return r;
                }
            }
            w |= field(ins.conn[0].mapIdx & 0x1f, 21);
            w |= field(ins.conn[0].phys & 0xff, 13);
            w |= field(ins.conn[1].mapIdx & 0x1f, 8);
            w |= field(ins.conn[1].phys & 0xff, 0);
        }
        r.word = w;
        return r;
    }

    MachineWord op6 = primaryOpcode(ins.op, RegClass::Int);

    if (info.isBranch) {
        std::int32_t disp = ins.target - pc;
        if (!fitsSigned(disp, 15)) {
            r.error = EncodeError::DisplacementTooWide;
            return r;
        }
        MachineWord w = field(op6, 26);
        w |= field(check_reg(ins.src[0]), 21);
        w |= field(check_reg(ins.src[1]), 16);
        w |= field(ins.predictTaken ? 1 : 0, 15);
        w |= MachineWord(disp) & 0x7fff;
        r.word = w;
        return r;
    }

    if (ins.op == Opcode::J || ins.op == Opcode::JSR) {
        if (ins.target < 0 || ins.target >= (1 << 26))
            panic("encode: jump target out of range: ", ins.target);
        r.word = field(op6, 26) | (MachineWord(ins.target) & 0x3ffffff);
        return r;
    }

    if (op6 != opRFormat) {
        // I-format.
        MachineWord w = field(op6, 26);
        MachineWord rd = 0, rs = 0;
        if (info.hasDst)
            rd = check_reg(ins.dst);
        if (ins.op == Opcode::SW || ins.op == Opcode::SF) {
            rd = check_reg(ins.src[0]); // value
            rs = check_reg(ins.src[1]); // base
        } else if (info.numSrcs >= 1) {
            rs = check_reg(ins.src[0]);
        }
        Word imm = ins.imm;
        // Logical immediates are zero-extended (MIPS style), so the
        // LUI+ORI idiom can materialise any 32-bit constant exactly;
        // arithmetic and memory immediates are sign-extended.
        bool zero_ext = ins.op == Opcode::LUI ||
                        ins.op == Opcode::ANDI ||
                        ins.op == Opcode::ORI ||
                        ins.op == Opcode::XORI;
        bool imm_ok = zero_ext ? (imm >= 0 && imm <= 0xffff)
                               : fitsSigned(imm, 16);
        if (!imm_ok) {
            r.error = EncodeError::ImmediateTooWide;
            return r;
        }
        w |= field(rd, 21) | field(rs, 16) | (MachineWord(imm) & 0xffff);
        r.word = w;
        return r;
    }

    // R-format: funct = enum value.
    MachineWord w = field(opRFormat, 26);
    MachineWord rd = 0, rs = 0, rt = 0;
    if (info.hasDst)
        rd = check_reg(ins.dst);
    if (info.numSrcs >= 1)
        rs = check_reg(ins.src[0]);
    if (info.numSrcs >= 2)
        rt = check_reg(ins.src[1]);
    w |= field(rd, 21) | field(rs, 16) | field(rt, 11);
    w |= static_cast<MachineWord>(ins.op) & 0x7ff;
    r.word = w;
    return r;
}

namespace
{

Opcode
primaryToOpcode(MachineWord op6, RegClass &conn_cls)
{
    switch (op6) {
      case 1:
        return Opcode::ADDI;
      case 2:
        return Opcode::ANDI;
      case 3:
        return Opcode::ORI;
      case 4:
        return Opcode::XORI;
      case 5:
        return Opcode::SLLI;
      case 6:
        return Opcode::SRLI;
      case 7:
        return Opcode::SRAI;
      case 8:
        return Opcode::SLTI;
      case 9:
        return Opcode::LI;
      case 10:
        return Opcode::LUI;
      case 11:
        return Opcode::LW;
      case 12:
        return Opcode::SW;
      case 13:
        return Opcode::LF;
      case 14:
        return Opcode::SF;
      case 15:
        return Opcode::TRAP;
      case 16:
        return Opcode::BEQ;
      case 17:
        return Opcode::BNE;
      case 18:
        return Opcode::BLT;
      case 19:
        return Opcode::BGE;
      case 20:
        return Opcode::BLE;
      case 21:
        return Opcode::BGT;
      case 22:
        return Opcode::J;
      case 23:
        return Opcode::JSR;
      case 24:
        return Opcode::CONNECT_USE;
      case 25:
        return Opcode::CONNECT_DEF;
      case 26:
        conn_cls = RegClass::Int;
        return Opcode::CONNECT_UU;
      case 27:
        conn_cls = RegClass::Fp;
        return Opcode::CONNECT_UU;
      case 28:
        conn_cls = RegClass::Int;
        return Opcode::CONNECT_DU;
      case 29:
        conn_cls = RegClass::Fp;
        return Opcode::CONNECT_DU;
      case 30:
        conn_cls = RegClass::Int;
        return Opcode::CONNECT_DD;
      case 31:
        conn_cls = RegClass::Fp;
        return Opcode::CONNECT_DD;
      default:
        return Opcode::NUM_OPCODES;
    }
}

void
setConnectKinds(Instruction &ins)
{
    switch (ins.op) {
      case Opcode::CONNECT_USE:
        ins.conn[0].isDef = false;
        break;
      case Opcode::CONNECT_DEF:
        ins.conn[0].isDef = true;
        break;
      case Opcode::CONNECT_UU:
        ins.conn[0].isDef = false;
        ins.conn[1].isDef = false;
        break;
      case Opcode::CONNECT_DU:
        ins.conn[0].isDef = true;
        ins.conn[1].isDef = false;
        break;
      case Opcode::CONNECT_DD:
        ins.conn[0].isDef = true;
        ins.conn[1].isDef = true;
        break;
      default:
        break;
    }
}

} // namespace

std::optional<Instruction>
decode(MachineWord word, std::int32_t pc)
{
    MachineWord op6 = word >> 26;
    Instruction ins;

    if (op6 == opRFormat) {
        MachineWord funct = word & 0x7ff;
        if (funct >= static_cast<MachineWord>(Opcode::NUM_OPCODES))
            return std::nullopt;
        ins.op = static_cast<Opcode>(funct);
        const OpcodeInfo &info = ins.info();
        if (info.isConnect || info.isBranch || ins.op == Opcode::J ||
            ins.op == Opcode::JSR || info.hasImm)
            return std::nullopt; // those are never R-format
        if (info.hasDst)
            ins.dst = Reg(info.dstClass, (word >> 21) & 0x1f);
        if (info.numSrcs >= 1)
            ins.src[0] = Reg(info.srcClass[0], (word >> 16) & 0x1f);
        if (info.numSrcs >= 2)
            ins.src[1] = Reg(info.srcClass[1], (word >> 11) & 0x1f);
        return ins;
    }

    RegClass conn_cls = RegClass::Int;
    Opcode op = primaryToOpcode(op6, conn_cls);
    if (op == Opcode::NUM_OPCODES)
        return std::nullopt;
    ins.op = op;
    const OpcodeInfo &info = ins.info();

    if (info.isConnect) {
        ins.connCls = conn_cls;
        if (op == Opcode::CONNECT_USE || op == Opcode::CONNECT_DEF) {
            ins.connCls = (word >> 25) & 1 ? RegClass::Fp : RegClass::Int;
            ins.nconn = 1;
            ins.conn[0].mapIdx = (word >> 20) & 0x1f;
            ins.conn[0].phys = (word >> 12) & 0xff;
        } else {
            ins.nconn = 2;
            ins.conn[0].mapIdx = (word >> 21) & 0x1f;
            ins.conn[0].phys = (word >> 13) & 0xff;
            ins.conn[1].mapIdx = (word >> 8) & 0x1f;
            ins.conn[1].phys = word & 0xff;
        }
        setConnectKinds(ins);
        return ins;
    }

    if (info.isBranch) {
        ins.src[0] = Reg(info.srcClass[0], (word >> 21) & 0x1f);
        ins.src[1] = Reg(info.srcClass[1], (word >> 16) & 0x1f);
        ins.predictTaken = (word >> 15) & 1;
        std::int32_t disp = word & 0x7fff;
        if (disp & 0x4000)
            disp -= 0x8000; // sign-extend 15 bits
        ins.target = pc + disp;
        return ins;
    }

    if (op == Opcode::J || op == Opcode::JSR) {
        ins.target = word & 0x3ffffff;
        return ins;
    }

    // I-format.
    MachineWord rd = (word >> 21) & 0x1f;
    MachineWord rs = (word >> 16) & 0x1f;
    Word imm = word & 0xffff;
    bool zero_ext = op == Opcode::LUI || op == Opcode::ANDI ||
                    op == Opcode::ORI || op == Opcode::XORI;
    if (!zero_ext && (imm & 0x8000))
        imm -= 0x10000; // sign-extend 16 bits
    ins.imm = imm;
    if (op == Opcode::SW || op == Opcode::SF) {
        ins.src[0] = Reg(info.srcClass[0], rd);
        ins.src[1] = Reg(info.srcClass[1], rs);
    } else {
        if (info.hasDst)
            ins.dst = Reg(info.dstClass, rd);
        if (info.numSrcs >= 1)
            ins.src[0] = Reg(info.srcClass[0], rs);
    }
    return ins;
}

ProgramImage
encodeProgram(const Program &prog)
{
    ProgramImage img;
    img.words.reserve(prog.code.size());
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        EncodeResult r =
            encode(prog.code[i], static_cast<std::int32_t>(i));
        if (!r.ok()) {
            std::ostringstream os;
            os << "instruction " << i << " ("
               << prog.code[i].toString() << ") not encodable: ";
            // Dual connects carry two independent (mapIdx, phys)
            // payloads; name the half that overflowed.
            if (r.errorConn >= 0 && prog.code[i].nconn == 2)
                os << "connect pair " << r.errorConn << " ";
            switch (r.error) {
              case EncodeError::ImmediateTooWide:
                os << "immediate too wide";
                break;
              case EncodeError::RegisterTooHigh:
                os << "register index needs more than 5 bits";
                break;
              case EncodeError::PhysTooHigh:
                os << "physical register needs more than 8 bits";
                break;
              case EncodeError::DisplacementTooWide:
                os << "branch displacement too wide";
                break;
              default:
                os << "unknown";
            }
            img.error = os.str();
            return img;
        }
        img.words.push_back(r.word);
    }
    return img;
}

} // namespace rcsim::isa
