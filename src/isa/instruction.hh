/**
 * @file
 * The decoded machine instruction and the flat machine program.
 *
 * This is the form the pipeline simulator executes and the binary
 * encoder serialises.  In with-RC code the register fields of ordinary
 * instructions hold *map indices* that the hardware resolves through
 * the register mapping table; connect instructions carry explicit
 * (map index, physical register) pairs.
 */

#ifndef RCSIM_ISA_INSTRUCTION_HH
#define RCSIM_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "isa/reg.hh"
#include "support/types.hh"

namespace rcsim::isa
{

/**
 * Why an instruction exists — used for the paper's code-size
 * accounting (Figure 9 separates spill code, connect instructions and
 * extended-register save/restore around calls).
 */
enum class InstrOrigin : std::uint8_t
{
    Normal,      // came from the source program
    SpillLoad,   // reload of a spilled value (without-RC model)
    SpillStore,  // store of a spilled value
    Connect,     // inserted connect instruction (with-RC model)
    SaveRestore, // caller/callee save-restore around calls
    Glue,        // calling convention / prologue / epilogue
};

/** Number of InstrOrigin values (countAllOrigins() array size). */
constexpr int numInstrOrigins = 6;

/** One (map index -> physical register) pair of a connect. */
struct ConnectPair
{
    std::uint16_t mapIdx = 0;
    std::uint16_t phys = 0;
    bool isDef = false; // write-map (connect-def) vs read-map update
};

/** A decoded RCM machine instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;

    /** Destination register (valid when opcodeInfo().hasDst). */
    Reg dst{};

    /** Source registers (count = opcodeInfo().numSrcs). */
    Reg src[2]{};

    /** Immediate operand / memory offset. */
    Word imm = 0;

    /** Branch or jump target: absolute instruction index. */
    std::int32_t target = -1;

    /** Connect payload (1 pair for USE/DEF, 2 for UU/DU/DD). */
    ConnectPair conn[2]{};
    std::uint8_t nconn = 0;

    /** Register class the connect pairs apply to. */
    RegClass connCls = RegClass::Int;

    /** Compiler static branch prediction (profile-driven). */
    bool predictTaken = false;

    /** Provenance for code-size accounting. */
    InstrOrigin origin = InstrOrigin::Normal;

    const OpcodeInfo &info() const { return opcodeInfo(op); }

    bool isConnect() const { return info().isConnect; }
    bool isBranch() const { return info().isBranch; }
    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool hasDst() const { return info().hasDst; }
    int numSrcs() const { return info().numSrcs; }

    /** One-line disassembly, e.g. "add r3, r1, r2". */
    std::string toString() const;
};

/** Per-function metadata inside a flat program. */
struct FunctionInfo
{
    std::string name;
    std::int32_t entry = 0; // first instruction index
    std::int32_t end = 0;   // one past the last instruction
};

/**
 * A linked, flat machine program: all functions concatenated, branch
 * and call targets resolved to absolute instruction indices.
 */
struct Program
{
    std::vector<Instruction> code;
    std::vector<FunctionInfo> functions;
    std::int32_t entry = 0; // index of the first instruction to run

    /** Initial memory image (globals); copied into simulated memory. */
    std::vector<std::uint8_t> dataImage;
    Addr dataBase = 0;

    /** Total simulated memory size in bytes (data + heap + stack). */
    Addr memorySize = 0;

    /** Static instruction counts by origin (Figure 9 accounting). */
    Count countByOrigin(InstrOrigin origin) const;

    /**
     * All origin counts (NOPs excluded) in a single scan, indexed by
     * InstrOrigin; their sum is staticSize().
     */
    std::array<Count, numInstrOrigins> countAllOrigins() const;

    /** Static size excluding NOPs. */
    Count staticSize() const;

    /** Multi-line disassembly with indices and function headers. */
    std::string disassemble() const;
};

} // namespace rcsim::isa

#endif // RCSIM_ISA_INSTRUCTION_HH
