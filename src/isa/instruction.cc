#include "isa/instruction.hh"

#include <sstream>

#include "support/logging.hh"

namespace rcsim::isa
{

std::string
regName(const Reg &r)
{
    std::ostringstream os;
    os << (r.cls == RegClass::Int ? 'r' : 'f') << r.idx;
    return os.str();
}

std::string
Instruction::toString() const
{
    const OpcodeInfo &i = info();
    std::ostringstream os;
    os << i.name;

    if (isConnect()) {
        os << (connCls == RegClass::Int ? " i" : " f");
        for (int k = 0; k < nconn; ++k) {
            if (k)
                os << ",";
            os << " [" << (conn[k].isDef ? "def" : "use") << " i"
               << conn[k].mapIdx << " -> p" << conn[k].phys << "]";
        }
        return os.str();
    }

    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };

    if (i.hasDst)
        sep() << regName(dst);
    for (int k = 0; k < i.numSrcs; ++k)
        sep() << regName(src[k]);
    if (i.hasImm)
        sep() << imm;
    if (i.isBranch || op == Opcode::J || op == Opcode::JSR) {
        sep() << "@" << target;
        if (i.isBranch)
            os << (predictTaken ? " [T]" : " [NT]");
    }
    return os.str();
}

Count
Program::countByOrigin(InstrOrigin origin) const
{
    Count n = 0;
    for (const Instruction &ins : code)
        if (ins.origin == origin && ins.op != Opcode::NOP)
            ++n;
    return n;
}

std::array<Count, numInstrOrigins>
Program::countAllOrigins() const
{
    std::array<Count, numInstrOrigins> counts{};
    for (const Instruction &ins : code)
        if (ins.op != Opcode::NOP)
            ++counts[static_cast<std::size_t>(ins.origin)];
    return counts;
}

Count
Program::staticSize() const
{
    Count n = 0;
    for (const Instruction &ins : code)
        if (ins.op != Opcode::NOP)
            ++n;
    return n;
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    std::size_t next_func = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
        while (next_func < functions.size() &&
               functions[next_func].entry == static_cast<std::int32_t>(i)) {
            os << functions[next_func].name << ":\n";
            ++next_func;
        }
        os << "  " << i << ": " << code[i].toString() << "\n";
    }
    return os.str();
}

} // namespace rcsim::isa
