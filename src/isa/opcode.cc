#include "isa/opcode.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace rcsim::isa
{

namespace
{

constexpr RegClass I = RegClass::Int;
constexpr RegClass F = RegClass::Fp;

} // namespace

namespace detail
{

// One row per Opcode, in declaration order.
// {name, class, hasDst, numSrcs, hasImm, isBranch, isJump,
//  isMem, isLoad, isStore, isConnect, dstClass, {srcClass[2]}}
const OpcodeInfo
    opcodeTable[static_cast<std::size_t>(Opcode::NUM_OPCODES)] = {
    {"nop", LatencyClass::None, false, 0, false, false, false, false,
     false, false, false, I, {I, I}},
    {"halt", LatencyClass::None, false, 0, false, false, false, false,
     false, false, false, I, {I, I}},

    {"add", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"sub", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"and", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"or", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"xor", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"nor", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"sll", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"srl", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"sra", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"slt", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"sltu", LatencyClass::IntAlu, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},

    {"addi", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"andi", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"ori", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"xori", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"slli", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"srli", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"srai", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},
    {"slti", LatencyClass::IntAlu, true, 1, true, false, false, false,
     false, false, false, I, {I, I}},

    {"li", LatencyClass::IntAlu, true, 0, true, false, false, false,
     false, false, false, I, {I, I}},
    {"lui", LatencyClass::IntAlu, true, 0, true, false, false, false,
     false, false, false, I, {I, I}},
    {"mov", LatencyClass::IntAlu, true, 1, false, false, false, false,
     false, false, false, I, {I, I}},

    {"mul", LatencyClass::IntMul, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"div", LatencyClass::IntDiv, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},
    {"rem", LatencyClass::IntDiv, true, 2, false, false, false, false,
     false, false, false, I, {I, I}},

    {"fadd", LatencyClass::FpAlu, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fsub", LatencyClass::FpAlu, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fneg", LatencyClass::FpAlu, true, 1, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fabs", LatencyClass::FpAlu, true, 1, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fmov", LatencyClass::FpAlu, true, 1, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fmin", LatencyClass::FpAlu, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fmax", LatencyClass::FpAlu, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},

    {"fcmp.lt", LatencyClass::FpAlu, true, 2, false, false, false,
     false, false, false, false, I, {F, F}},
    {"fcmp.le", LatencyClass::FpAlu, true, 2, false, false, false,
     false, false, false, false, I, {F, F}},
    {"fcmp.eq", LatencyClass::FpAlu, true, 2, false, false, false,
     false, false, false, false, I, {F, F}},

    {"cvt.if", LatencyClass::FpAlu, true, 1, false, false, false, false,
     false, false, false, F, {I, I}},
    {"cvt.fi", LatencyClass::FpAlu, true, 1, false, false, false, false,
     false, false, false, I, {F, F}},

    {"fmul", LatencyClass::FpMul, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},
    {"fdiv", LatencyClass::FpDiv, true, 2, false, false, false, false,
     false, false, false, F, {F, F}},

    {"lw", LatencyClass::Load, true, 1, true, false, false, true, true,
     false, false, I, {I, I}},
    {"sw", LatencyClass::Store, false, 2, true, false, false, true,
     false, true, false, I, {I, I}},
    {"lf", LatencyClass::Load, true, 1, true, false, false, true, true,
     false, false, F, {I, I}},
    {"sf", LatencyClass::Store, false, 2, true, false, false, true,
     false, true, false, F, {F, I}},

    {"beq", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},
    {"bne", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},
    {"blt", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},
    {"bge", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},
    {"ble", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},
    {"bgt", LatencyClass::Branch, false, 2, false, true, false, false,
     false, false, false, I, {I, I}},

    {"j", LatencyClass::Branch, false, 0, false, false, true, false,
     false, false, false, I, {I, I}},
    {"jsr", LatencyClass::Branch, false, 0, false, false, true, false,
     false, false, false, I, {I, I}},
    {"rts", LatencyClass::Branch, false, 0, false, false, true, false,
     false, false, false, I, {I, I}},

    {"trap", LatencyClass::Branch, false, 0, true, false, true, false,
     false, false, false, I, {I, I}},
    {"rfe", LatencyClass::Branch, false, 0, false, false, true, false,
     false, false, false, I, {I, I}},
    {"mfpsw", LatencyClass::IntAlu, true, 0, false, false, false, false,
     false, false, false, I, {I, I}},
    {"mtpsw", LatencyClass::IntAlu, false, 1, false, false, false,
     false, false, false, false, I, {I, I}},

    {"connect.use", LatencyClass::Connect, false, 0, false, false,
     false, false, false, false, true, I, {I, I}},
    {"connect.def", LatencyClass::Connect, false, 0, false, false,
     false, false, false, false, true, I, {I, I}},
    {"connect.uu", LatencyClass::Connect, false, 0, false, false, false,
     false, false, false, true, I, {I, I}},
    {"connect.du", LatencyClass::Connect, false, 0, false, false, false,
     false, false, false, true, I, {I, I}},
    {"connect.dd", LatencyClass::Connect, false, 0, false, false, false,
     false, false, false, true, I, {I, I}},
};

void
badOpcode(std::size_t idx)
{
    panic("opcodeInfo: bad opcode ", idx);
}

int
unknownLatencyClass()
{
    panic("latencyOf: unreachable");
}

} // namespace detail

const char *
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

Opcode
opcodeFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> index = [] {
        std::unordered_map<std::string, Opcode> m;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Opcode::NUM_OPCODES); ++i)
            m.emplace(detail::opcodeTable[i].name,
                      static_cast<Opcode>(i));
        return m;
    }();
    auto it = index.find(name);
    return it == index.end() ? Opcode::NUM_OPCODES : it->second;
}

bool
isControlFlow(Opcode op)
{
    const OpcodeInfo &info = opcodeInfo(op);
    return info.isBranch || info.isJump || op == Opcode::HALT;
}

int
LatencyConfig::latencyOf(Opcode op) const
{
    return latencyOf(opcodeInfo(op).latClass);
}

} // namespace rcsim::isa
