/**
 * @file
 * A small text assembler for the RCM instruction set.
 *
 * Used by directed tests and examples to express machine programs
 * exactly.  Syntax, one instruction per line ('#' starts a comment):
 *
 *   func main:                  ; begins a function
 *   loop:                       ; a label
 *     li   r1, 100
 *     addi r1, r1, -1
 *     bgt  r1, r0, loop         ; branch to label (predict-not-taken)
 *     bgt+ r1, r0, loop         ; '+' suffix = predict-taken
 *     jsr  helper               ; call by function name
 *     connect.use int i3, p100  ; single connect
 *     connect.du  fp  i2, p40, i5, p41
 *     halt
 */

#ifndef RCSIM_ISA_ASSEMBLER_HH
#define RCSIM_ISA_ASSEMBLER_HH

#include <string>

#include "isa/instruction.hh"

namespace rcsim::isa
{

/** Result of assembling a source string. */
struct AsmResult
{
    Program program;
    std::string error; // empty on success; includes the line number
    bool ok() const { return error.empty(); }
};

/**
 * Assemble RCM assembly text into a linked Program.
 *
 * The program entry point is the function named "main" if present,
 * otherwise the first function (or instruction) in the file.
 */
AsmResult assemble(const std::string &source);

} // namespace rcsim::isa

#endif // RCSIM_ISA_ASSEMBLER_HH
