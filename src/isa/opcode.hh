/**
 * @file
 * The RCM opcode set: a MIPS-R2000-like RISC instruction set extended
 * with general compare-and-branch opcodes (as in the paper, Section
 * 5.2) and the five register-connection opcodes (Section 2.2).
 */

#ifndef RCSIM_ISA_OPCODE_HH
#define RCSIM_ISA_OPCODE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "isa/reg.hh"
#include "support/types.hh"

namespace rcsim::isa
{

/** Every operation in the RCM instruction set. */
enum class Opcode : std::uint8_t
{
    // No-op / control.
    NOP,
    HALT,

    // Integer ALU, register-register (latency 1).
    ADD,
    SUB,
    AND,
    OR,
    XOR,
    NOR,
    SLL,
    SRL,
    SRA,
    SLT,
    SLTU,

    // Integer ALU, register-immediate (latency 1).
    ADDI,
    ANDI,
    ORI,
    XORI,
    SLLI,
    SRLI,
    SRAI,
    SLTI,

    // Immediate materialisation / moves (latency 1).
    LI,
    LUI,
    MOV,

    // Integer multiply (latency 3) and divide (latency 10).
    MUL,
    DIV,
    REM,

    // Floating-point ALU (latency 3).
    FADD,
    FSUB,
    FNEG,
    FABS,
    FMOV,
    FMIN,
    FMAX,

    // Floating-point compare: fp sources, integer destination
    // (latency 3, FP ALU class).
    FCMP_LT,
    FCMP_LE,
    FCMP_EQ,

    // Conversions (latency 3).
    CVT_IF, // int -> fp
    CVT_FI, // fp -> int (truncating)

    // Floating-point multiply (latency 3) and divide (latency 10).
    FMUL,
    FDIV,

    // Memory: loads have configurable latency (2 or 4), stores 1.
    LW, // int load:  dst <- mem[src1 + imm]
    SW, // int store: mem[src2 + imm] <- src1
    LF, // fp load
    SF, // fp store

    // Compare-and-branch (latency 1): branch if src1 OP src2.
    BEQ,
    BNE,
    BLT,
    BGE,
    BLE,
    BGT,

    // Unconditional control flow.
    J,
    JSR, // subroutine call; resets the register map (Section 4.1)
    RTS, // subroutine return; resets the register map

    // Trap support (Section 4.3).  TRAP enters the handler and clears
    // the PSW map-enable flag; RFE restores the saved PSW.  MFPSW and
    // MTPSW read / write the processor status word so handlers can
    // re-enable the register map.
    TRAP,
    RFE,
    MFPSW,
    MTPSW,

    // Register-connection opcodes (Section 2.2).  Zero execution
    // latency in the default implementation (Section 2.4).
    CONNECT_USE,
    CONNECT_DEF,
    CONNECT_UU, // connect-use-use
    CONNECT_DU, // connect-def-use
    CONNECT_DD, // connect-def-def

    NUM_OPCODES
};

/** Functional-unit class an opcode executes on (paper Table 1 rows). */
enum class LatencyClass : std::uint8_t
{
    IntAlu,   // 1 cycle
    IntMul,   // 3
    IntDiv,   // 10
    FpAlu,    // 3 (also conversions)
    FpMul,    // 3
    FpDiv,    // 10
    Load,     // 2 or 4 (configurable)
    Store,    // 1
    Branch,   // 1
    Connect,  // 0 or 1 (configurable, Section 2.4 / Figure 12)
    None,     // NOP / HALT
};

namespace detail
{
/** Cold path of the latency lookup: an unmapped class panics. */
[[noreturn]] int unknownLatencyClass();
} // namespace detail

/** Instruction latencies from Table 1 of the paper. */
struct LatencyConfig
{
    /** Memory load latency: 2 or 4 cycles in the experiments. */
    int loadLatency = 2;
    /** Connect latency: 0 (forwarded) or 1 (Figure 12 scenarios). */
    int connectLatency = 0;

    /**
     * Execution latency in cycles for a latency class.  Inline: the
     * simulator asks once per issued instruction.
     */
    int
    latencyOf(LatencyClass c) const
    {
        switch (c) {
          case LatencyClass::IntAlu:
            return 1;
          case LatencyClass::IntMul:
            return 3;
          case LatencyClass::IntDiv:
            return 10;
          case LatencyClass::FpAlu:
            return 3;
          case LatencyClass::FpMul:
            return 3;
          case LatencyClass::FpDiv:
            return 10;
          case LatencyClass::Load:
            return loadLatency;
          case LatencyClass::Store:
            return 1;
          case LatencyClass::Branch:
            return 1;
          case LatencyClass::Connect:
            return connectLatency;
          case LatencyClass::None:
            return 1;
        }
        return detail::unknownLatencyClass();
    }

    /** Execution latency in cycles for an opcode. */
    int latencyOf(Opcode op) const;
};

/** Static properties of each opcode. */
struct OpcodeInfo
{
    const char *name;
    LatencyClass latClass;
    bool hasDst;      // writes a register
    int numSrcs;      // register source operands (0..2)
    bool hasImm;      // carries an immediate / offset
    bool isBranch;    // conditional branch
    bool isJump;      // unconditional control transfer (J/JSR/RTS)
    bool isMem;       // memory access
    bool isLoad;
    bool isStore;
    bool isConnect;   // one of the CONNECT_* opcodes
    RegClass dstClass;
    RegClass srcClass[2];
};

namespace detail
{
/** Static property table, one row per Opcode (defined in opcode.cc). */
extern const OpcodeInfo
    opcodeTable[static_cast<std::size_t>(Opcode::NUM_OPCODES)];
[[noreturn]] void badOpcode(std::size_t idx);
} // namespace detail

/**
 * Look up the static properties of an opcode.  Inline with a cold
 * failure helper: the simulator performs this lookup for every
 * simulated instruction.
 */
inline const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto i = static_cast<std::size_t>(op);
    if (i >= static_cast<std::size_t>(Opcode::NUM_OPCODES))
        detail::badOpcode(i);
    return detail::opcodeTable[i];
}

/**
 * True when an opcode occupies a memory channel at issue: loads and
 * stores, plus jsr/rts for their stack traffic.  Shared by the
 * simulator's structural-hazard check and the predecode step so the
 * two can never disagree.
 */
inline bool
usesMemoryChannel(Opcode op)
{
    return opcodeInfo(op).isMem || op == Opcode::JSR ||
           op == Opcode::RTS;
}

/** Opcode mnemonic. */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; returns NUM_OPCODES when unknown. */
Opcode opcodeFromName(const std::string &name);

/** True for any control-flow opcode (branch, J, JSR, RTS, HALT). */
bool isControlFlow(Opcode op);

} // namespace rcsim::isa

#endif // RCSIM_ISA_OPCODE_HH
