/**
 * @file
 * Binary instruction encoding for the RCM instruction set.
 *
 * This demonstrates the paper's central compatibility claim: the RC
 * extension fits a fixed 32-bit MIPS-style instruction format without
 * touching the existing operand fields.  The instantiation encoded
 * here is the m <= 32 base architecture (5-bit register index fields)
 * with up to 256 physical registers (8-bit fields in the connect
 * payloads):
 *
 *   R-format   op=0   | rd(5) | rs(5) | rt(5) | funct(11)
 *   I-format   op(6)  | rd(5) | rs(5) | imm(16 signed)
 *   Branch     op(6)  | rs1(5)| rs2(5)| pred(1) | disp(15 signed)
 *   Jump       op(6)  | target(26)
 *   Connect-1  op(6)  | cls(1) | idx(5) | phys(8) | zero(12)
 *   Connect-2  op(6)  | idx1(5) | phys1(8) | idx2(5) | phys2(8)
 *
 * The dual-connect forms (connect-use-use, connect-def-use,
 * connect-def-def; Section 2.2 footnote 1) consume the full 26 payload
 * bits; the register class is folded into the opcode for those.
 */

#ifndef RCSIM_ISA_ENCODING_HH
#define RCSIM_ISA_ENCODING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace rcsim::isa
{

/** An encoded 32-bit machine word. */
using MachineWord = std::uint32_t;

/** Reasons an instruction cannot be encoded in the 32-bit format. */
enum class EncodeError
{
    Ok,
    ImmediateTooWide,   // immediate does not fit the 16-bit field
    RegisterTooHigh,    // register index needs more than 5 bits
    PhysTooHigh,        // connect physical register needs > 8 bits
    DisplacementTooWide // branch displacement does not fit 15 bits
};

/** Result of encoding one instruction. */
struct EncodeResult
{
    EncodeError error = EncodeError::Ok;
    MachineWord word = 0;

    /**
     * For a connect-field failure (RegisterTooHigh/PhysTooHigh on a
     * connect): which conn[] pair overflowed, so dual-connect
     * diagnostics can name the offending half.  -1 otherwise.
     */
    int errorConn = -1;

    bool ok() const { return error == EncodeError::Ok; }
};

/**
 * Encode one instruction.
 *
 * @param ins the decoded instruction
 * @param pc  the instruction's own index (branch displacements are
 *            encoded pc-relative)
 */
EncodeResult encode(const Instruction &ins, std::int32_t pc);

/**
 * Decode one machine word back into an Instruction.
 *
 * @param word the encoded instruction
 * @param pc   the instruction's index, to rebuild absolute targets
 * @return std::nullopt if the word is not a valid RCM encoding
 */
std::optional<Instruction> decode(MachineWord word, std::int32_t pc);

/**
 * Encode a whole program; fails fast with a description of the first
 * non-encodable instruction.
 */
struct ProgramImage
{
    std::vector<MachineWord> words;
    std::string error; // empty on success
    bool ok() const { return error.empty(); }
};

ProgramImage encodeProgram(const Program &prog);

} // namespace rcsim::isa

#endif // RCSIM_ISA_ENCODING_HH
