#include "inject/campaign.hh"

#include <chrono>
#include <cstdio>

#include "harness/sweep.hh"
#include "inject/injector.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rcsim::inject
{

const char *
toString(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Detected:
        return "detected";
      case FaultOutcome::Sdc:
        return "sdc";
      case FaultOutcome::Hang:
        return "hang";
    }
    return "unknown";
}

namespace
{

/** Escape a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonStr(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** One faulted replay of an already-compiled program. */
FaultRunRecord
runOneFault(const harness::CompiledProgram &compiled,
            const sim::SimConfig &base_cfg,
            const std::vector<sim::CommitEffect> &golden_log,
            Cycle hang_limit, double wall_clock_secs,
            std::uint64_t seed, const Fault &fault)
{
    trace::Span span("fault.run", "inject", "seed", seed);

    FaultRunRecord rec;
    rec.seed = seed;
    rec.fault = fault;

    // Instruction faults mutate the code, so every run gets its own
    // copy of the program.
    isa::Program program = compiled.program;

    sim::SimConfig cfg = base_cfg;
    cfg.maxCycles = hang_limit;

    sim::Simulator simulator(program, cfg);
    FaultInjector injector(program, fault);
    DivergenceChecker checker(golden_log, program);
    sim::ProbeChain chain;
    chain.add(&injector);
    chain.add(&checker);
    simulator.attachProbe(&chain);

    auto start = std::chrono::steady_clock::now();
    bool wall_hang = false;
    bool errored = false;
    std::string error;
    ScopedQuietErrors hush; // detections are expected, not noise
    try {
        // Step in slices so the wall-clock watchdog can fire even
        // when the cycle budget is generous.
        const Cycle slice = 1'000'000;
        while (!simulator.step(slice)) {
            if (simulator.currentCycle() >= hang_limit)
                break;
            if (wall_clock_secs > 0) {
                std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                if (elapsed.count() > wall_clock_secs) {
                    wall_hang = true;
                    break;
                }
            }
        }
    } catch (const std::exception &e) {
        // A model assertion tripping over injected corruption is a
        // detection, the same class as an illegal-instruction fault.
        errored = true;
        error = e.what();
    }

    rec.cycles = simulator.currentCycle();
    rec.divergence = checker.finish();
    rec.diverged = rec.divergence.diverged;

    if (trace::on() && injector.applied())
        trace::instant("inject.applied", "inject", "cycle",
                       static_cast<std::uint64_t>(fault.cycle));
    // One instant per replay, named for the classified outcome
    // (inject.masked / inject.detected / inject.sdc / inject.hang).
    auto finish = [&]() {
        if (trace::on())
            trace::instant(std::string("inject.") +
                               toString(rec.outcome),
                           "inject", "seed", seed);
        return rec;
    };

    if (errored) {
        rec.outcome = FaultOutcome::Detected;
        rec.detail = error;
        return finish();
    }
    if (wall_hang) {
        rec.outcome = FaultOutcome::Hang;
        rec.detail = "wall-clock watchdog";
        return finish();
    }
    if (!simulator.halted()) {
        rec.outcome = FaultOutcome::Hang;
        rec.detail = "cycle limit (" + std::to_string(hang_limit) +
                     ") exceeded";
        return finish();
    }

    sim::SimResult res = simulator.result();
    if (!res.ok) {
        rec.outcome = FaultOutcome::Detected;
        rec.detail = res.error;
        return finish();
    }

    Word result = simulator.state().loadWord(compiled.resultAddr);
    if (result == compiled.golden) {
        rec.outcome = FaultOutcome::Masked;
        rec.detail = injector.applied() ? injector.note()
                                        : "fault never triggered";
    } else {
        rec.outcome = FaultOutcome::Sdc;
        rec.detail = "checksum " + std::to_string(result) +
                     ", expected " + std::to_string(compiled.golden);
    }
    return finish();
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg)
{
    CampaignResult result;
    result.workload = cfg.workload;
    result.label = cfg.label;
    result.seedBase = cfg.seedBase;

    const workloads::Workload *w =
        workloads::findWorkload(cfg.workload);
    if (!w)
        fatal("unknown workload '", cfg.workload, "'");
    if (cfg.targets.empty())
        fatal("campaign has no fault targets");

    result.rcDesc = cfg.opts.rc.toString();

    // Compile once (the config-independent frontend is additionally
    // memoized across campaigns on the same workload); keep the
    // program for the faulted replays.
    harness::CompiledProgram compiled =
        harness::compileWorkload(*w, cfg.opts);

    // Golden run: record the commit stream and verify the final
    // checksum against the reference interpreter's golden value.
    sim::SimConfig sc;
    sc.machine = cfg.opts.machine;
    sc.rc = cfg.opts.rc;
    sim::Simulator golden_sim(compiled.program, sc);
    CommitRecorder recorder;
    golden_sim.attachProbe(&recorder);
    sim::SimResult golden_res = golden_sim.run();
    if (!golden_res.ok)
        panic("golden run of '", cfg.workload,
              "' failed: ", golden_res.error);
    if (golden_sim.state().loadWord(compiled.resultAddr) !=
        compiled.golden)
        panic("golden run of '", cfg.workload,
              "' does not match the interpreter checksum");
    if (recorder.truncated())
        warn("golden commit log of '", cfg.workload,
             "' truncated; divergence localization is partial");

    result.goldenCycles = golden_res.cycles;
    result.goldenCommits = recorder.log().size();

    Cycle hang_limit =
        static_cast<Cycle>(static_cast<double>(golden_res.cycles) *
                           cfg.hangCycleFactor) +
        10'000;

    FaultSpace space;
    space.rc = cfg.opts.rc;
    space.cls = w->isFp ? isa::RegClass::Fp : isa::RegClass::Int;
    space.codeSize = static_cast<int>(compiled.program.code.size());
    space.maxCycle = golden_res.cycles;

    // Faulted replays are independent: fan them out over the job
    // pool, each seed writing only its own record slot so the result
    // (and its JSON) is byte-identical to the serial path.
    result.runs.resize(static_cast<std::size_t>(cfg.seeds));
    harness::parallelFor(
        static_cast<std::size_t>(cfg.seeds), cfg.jobs,
        [&](std::size_t i) {
            std::uint64_t seed =
                cfg.seedBase + static_cast<std::uint64_t>(i);
            SplitMix rng(seed);
            Fault fault = planFault(rng, cfg.targets, space);
            result.runs[i] =
                runOneFault(compiled, sc, recorder.log(), hang_limit,
                            cfg.wallClockSecs, seed, fault);
        });
    for (const FaultRunRecord &rec : result.runs) {
        switch (rec.outcome) {
          case FaultOutcome::Masked:
            ++result.masked;
            break;
          case FaultOutcome::Detected:
            ++result.detected;
            break;
          case FaultOutcome::Sdc:
            ++result.sdc;
            break;
          case FaultOutcome::Hang:
            ++result.hang;
            break;
        }
    }
    return result;
}

std::vector<CampaignResult>
runCampaignSweep(const std::vector<CampaignConfig> &cfgs)
{
    std::vector<CampaignResult> out;
    out.reserve(cfgs.size());
    for (const CampaignConfig &cfg : cfgs) {
        try {
            // A bad configuration is reported in the sweep result;
            // don't let its panic/fatal print mid-sweep.
            ScopedQuietErrors hush;
            out.push_back(runCampaign(cfg));
        } catch (const PanicError &e) {
            CampaignResult failed;
            failed.workload = cfg.workload;
            failed.label = cfg.label;
            failed.seedBase = cfg.seedBase;
            failed.failed = true;
            failed.error = std::string("panic: ") + e.what();
            out.push_back(std::move(failed));
        } catch (const FatalError &e) {
            CampaignResult failed;
            failed.workload = cfg.workload;
            failed.label = cfg.label;
            failed.seedBase = cfg.seedBase;
            failed.failed = true;
            failed.error = std::string("fatal: ") + e.what();
            out.push_back(std::move(failed));
        }
    }
    return out;
}

std::string
CampaignResult::toJson(bool include_runs) const
{
    std::string j = "{";
    j += "\"workload\": " + jsonStr(workload);
    j += ", \"label\": " + jsonStr(label);
    j += ", \"rc\": " + jsonStr(rcDesc);
    j += ", \"failed\": " + std::string(failed ? "true" : "false");
    if (failed) {
        j += ", \"error\": " + jsonStr(error);
        j += "}";
        return j;
    }
    j += ", \"seed_base\": " + std::to_string(seedBase);
    j += ", \"seeds\": " + std::to_string(runs.size());
    j += ", \"golden_cycles\": " + std::to_string(goldenCycles);
    j += ", \"golden_commits\": " + std::to_string(goldenCommits);
    j += ", \"outcomes\": {\"masked\": " + std::to_string(masked) +
         ", \"detected\": " + std::to_string(detected) +
         ", \"sdc\": " + std::to_string(sdc) +
         ", \"hang\": " + std::to_string(hang) + "}";
    if (include_runs) {
        j += ", \"runs\": [";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const FaultRunRecord &r = runs[i];
            if (i)
                j += ", ";
            j += "{\"seed\": " + std::to_string(r.seed);
            j += ", \"fault\": " + jsonStr(r.fault.toString());
            j += ", \"target\": " +
                 jsonStr(inject::toString(r.fault.target));
            j += ", \"kind\": " +
                 jsonStr(inject::toString(r.fault.kind));
            j += ", \"cycle\": " + std::to_string(r.fault.cycle);
            j += ", \"outcome\": " +
                 jsonStr(inject::toString(r.outcome));
            j += ", \"cycles\": " + std::to_string(r.cycles);
            j += ", \"detail\": " + jsonStr(r.detail);
            j += ", \"diverged\": " +
                 std::string(r.diverged ? "true" : "false");
            if (r.diverged) {
                const Divergence &d = r.divergence;
                j += ", \"divergence\": {\"index\": " +
                     std::to_string(d.index) +
                     ", \"cycle\": " + std::to_string(d.cycle) +
                     ", \"pc\": " + std::to_string(d.pc) +
                     ", \"disasm\": " + jsonStr(d.disasm) +
                     ", \"expected\": " + jsonStr(d.expected) +
                     ", \"actual\": " + jsonStr(d.actual) + "}";
            }
            j += "}";
        }
        j += "]";
    }
    j += "}";
    return j;
}

std::string
sweepToJson(const std::vector<CampaignResult> &results,
            bool include_runs)
{
    std::string j = "{\"campaigns\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            j += ", ";
        j += results[i].toJson(include_runs);
    }
    j += "]}";
    return j;
}

} // namespace rcsim::inject
