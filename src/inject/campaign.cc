#include "inject/campaign.hh"

#include <chrono>
#include <cstdio>

#include "harness/journal.hh"
#include "harness/predecode_cache.hh"
#include "harness/sweep.hh"
#include "inject/injector.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rcsim::inject
{

const char *
toString(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Detected:
        return "detected";
      case FaultOutcome::Sdc:
        return "sdc";
      case FaultOutcome::Hang:
        return "hang";
    }
    return "unknown";
}

namespace
{

/** One faulted replay of an already-compiled program. */
FaultRunRecord
runOneFault(const harness::CompiledProgram &compiled,
            const sim::SimConfig &base_cfg,
            const std::vector<sim::CommitEffect> &golden_log,
            Cycle hang_limit, double wall_clock_secs,
            std::uint64_t seed, const Fault &fault)
{
    trace::Span span("fault.run", "inject", "seed", seed);

    FaultRunRecord rec;
    rec.seed = seed;
    rec.fault = fault;

    // Instruction faults mutate the code, so every run gets its own
    // copy of the program.
    isa::Program program = compiled.program;

    sim::SimConfig cfg = base_cfg;
    cfg.maxCycles = hang_limit;

    // Every fault run starts from the pristine program, so they all
    // share one cached predecode; the injector's code mutation calls
    // invalidatePredecode() and only that run rebuilds.
    sim::Simulator simulator(program, cfg,
                             harness::cachedPredecode(program, cfg));
    FaultInjector injector(program, fault);
    DivergenceChecker checker(golden_log, program);
    sim::ProbeChain chain;
    chain.add(&injector);
    chain.add(&checker);
    simulator.attachProbe(&chain);

    auto start = std::chrono::steady_clock::now();
    bool wall_hang = false;
    bool errored = false;
    std::string error;
    ScopedQuietErrors hush; // detections are expected, not noise
    try {
        // Step in slices so the wall-clock watchdog can fire even
        // when the cycle budget is generous.
        const Cycle slice = 1'000'000;
        while (!simulator.step(slice)) {
            if (simulator.currentCycle() >= hang_limit)
                break;
            if (wall_clock_secs > 0) {
                std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                if (elapsed.count() > wall_clock_secs) {
                    wall_hang = true;
                    break;
                }
            }
        }
    } catch (const std::exception &e) {
        // A model assertion tripping over injected corruption is a
        // detection, the same class as an illegal-instruction fault.
        errored = true;
        error = e.what();
    }

    rec.cycles = simulator.currentCycle();
    rec.divergence = checker.finish();
    rec.diverged = rec.divergence.diverged;

    if (trace::on() && injector.applied())
        trace::instant("inject.applied", "inject", "cycle",
                       static_cast<std::uint64_t>(fault.cycle));
    // One instant per replay, named for the classified outcome
    // (inject.masked / inject.detected / inject.sdc / inject.hang).
    auto finish = [&]() {
        if (trace::on())
            trace::instant(std::string("inject.") +
                               toString(rec.outcome),
                           "inject", "seed", seed);
        return rec;
    };

    if (errored) {
        rec.outcome = FaultOutcome::Detected;
        rec.detail = error;
        return finish();
    }
    if (wall_hang) {
        rec.outcome = FaultOutcome::Hang;
        rec.detail = "wall-clock watchdog";
        return finish();
    }
    if (!simulator.halted()) {
        rec.outcome = FaultOutcome::Hang;
        rec.detail = "cycle limit (" + std::to_string(hang_limit) +
                     ") exceeded";
        return finish();
    }

    sim::SimResult res = simulator.result();
    if (res.reason == sim::StopReason::Deadline) {
        // The cooperative watchdog cancelled the replay: the fault
        // made the run overrun its wall-clock budget — a hang, not a
        // detection, even though fail() recorded an error.
        rec.outcome = FaultOutcome::Hang;
        rec.detail = "wall-clock watchdog (deadline)";
        return finish();
    }
    if (!res.ok) {
        rec.outcome = FaultOutcome::Detected;
        rec.detail = res.error;
        return finish();
    }

    Word result = simulator.state().loadWord(compiled.resultAddr);
    if (result == compiled.golden) {
        rec.outcome = FaultOutcome::Masked;
        rec.detail = injector.applied() ? injector.note()
                                        : "fault never triggered";
    } else {
        rec.outcome = FaultOutcome::Sdc;
        rec.detail = "checksum " + std::to_string(result) +
                     ", expected " + std::to_string(compiled.golden);
    }
    return finish();
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg)
{
    CampaignResult result;
    result.workload = cfg.workload;
    result.label = cfg.label;
    result.seedBase = cfg.seedBase;

    const workloads::Workload *w =
        workloads::findWorkload(cfg.workload);
    if (!w)
        fatal("unknown workload '", cfg.workload, "'");
    if (cfg.targets.empty())
        fatal("campaign has no fault targets");

    result.rcDesc = cfg.opts.rc.toString();

    // Compile once (the config-independent frontend is additionally
    // memoized across campaigns on the same workload); keep the
    // program for the faulted replays.
    harness::CompiledProgram compiled =
        harness::compileWorkload(*w, cfg.opts);

    // Golden run: record the commit stream and verify the final
    // checksum against the reference interpreter's golden value.
    sim::SimConfig sc;
    sc.machine = cfg.opts.machine;
    sc.rc = cfg.opts.rc;
    sc.cancel = cfg.cancel;
    sim::Simulator golden_sim(compiled.program, sc);
    CommitRecorder recorder;
    golden_sim.attachProbe(&recorder);
    sim::SimResult golden_res = golden_sim.run();
    if (golden_res.reason == sim::StopReason::Deadline)
        throw RcError(ErrorCategory::Hang,
                      "wall-clock deadline exceeded during the "
                      "golden run")
            .addContext("campaign '" + cfg.workload + "' (" +
                        result.rcDesc + ")");
    if (!golden_res.ok)
        panic("golden run of '", cfg.workload,
              "' failed: ", golden_res.error);
    if (golden_sim.state().loadWord(compiled.resultAddr) !=
        compiled.golden)
        panic("golden run of '", cfg.workload,
              "' does not match the interpreter checksum");
    if (recorder.truncated())
        warn("golden commit log of '", cfg.workload,
             "' truncated; divergence localization is partial");

    result.goldenCycles = golden_res.cycles;
    result.goldenCommits = recorder.log().size();

    Cycle hang_limit =
        static_cast<Cycle>(static_cast<double>(golden_res.cycles) *
                           cfg.hangCycleFactor) +
        10'000;

    FaultSpace space;
    space.rc = cfg.opts.rc;
    space.cls = w->isFp ? isa::RegClass::Fp : isa::RegClass::Int;
    space.codeSize = static_cast<int>(compiled.program.code.size());
    space.maxCycle = golden_res.cycles;

    // Faulted replays are independent: fan them out over the job
    // pool, each seed writing only its own record slot so the result
    // (and its JSON) is byte-identical to the serial path.
    result.runs.resize(static_cast<std::size_t>(cfg.seeds));
    harness::parallelFor(
        static_cast<std::size_t>(cfg.seeds), cfg.jobs,
        [&](std::size_t i) {
            std::uint64_t seed =
                cfg.seedBase + static_cast<std::uint64_t>(i);
            SplitMix rng(seed);
            Fault fault = planFault(rng, cfg.targets, space);
            result.runs[i] =
                runOneFault(compiled, sc, recorder.log(), hang_limit,
                            cfg.wallClockSecs, seed, fault);
        });
    for (const FaultRunRecord &rec : result.runs) {
        switch (rec.outcome) {
          case FaultOutcome::Masked:
            ++result.masked;
            break;
          case FaultOutcome::Detected:
            ++result.detected;
            break;
          case FaultOutcome::Sdc:
            ++result.sdc;
            break;
          case FaultOutcome::Hang:
            ++result.hang;
            break;
        }
    }
    return result;
}

std::vector<CampaignResult>
runCampaignSweep(const std::vector<CampaignConfig> &cfgs)
{
    std::vector<CampaignResult> out;
    out.reserve(cfgs.size());
    for (const CampaignConfig &cfg : cfgs) {
        try {
            // A bad configuration is reported in the sweep result;
            // don't let its panic/fatal print mid-sweep.
            ScopedQuietErrors hush;
            out.push_back(runCampaign(cfg));
        } catch (const RcError &e) {
            CampaignResult failed;
            failed.workload = cfg.workload;
            failed.label = cfg.label;
            failed.seedBase = cfg.seedBase;
            failed.failed = true;
            failed.error = e.describe();
            out.push_back(std::move(failed));
        } catch (const PanicError &e) {
            CampaignResult failed;
            failed.workload = cfg.workload;
            failed.label = cfg.label;
            failed.seedBase = cfg.seedBase;
            failed.failed = true;
            failed.error = std::string("panic: ") + e.what();
            out.push_back(std::move(failed));
        } catch (const FatalError &e) {
            CampaignResult failed;
            failed.workload = cfg.workload;
            failed.label = cfg.label;
            failed.seedBase = cfg.seedBase;
            failed.failed = true;
            failed.error = std::string("fatal: ") + e.what();
            out.push_back(std::move(failed));
        }
    }
    return out;
}

std::string
CampaignResult::toJson(bool include_runs) const
{
    std::string j = "{";
    j += "\"workload\": " + json::str(workload);
    j += ", \"label\": " + json::str(label);
    j += ", \"rc\": " + json::str(rcDesc);
    j += ", \"failed\": " + std::string(failed ? "true" : "false");
    if (failed) {
        j += ", \"error\": " + json::str(error);
        j += "}";
        return j;
    }
    j += ", \"seed_base\": " + std::to_string(seedBase);
    j += ", \"seeds\": " + std::to_string(runs.size());
    j += ", \"golden_cycles\": " + std::to_string(goldenCycles);
    j += ", \"golden_commits\": " + std::to_string(goldenCommits);
    j += ", \"outcomes\": {\"masked\": " + std::to_string(masked) +
         ", \"detected\": " + std::to_string(detected) +
         ", \"sdc\": " + std::to_string(sdc) +
         ", \"hang\": " + std::to_string(hang) + "}";
    if (include_runs) {
        j += ", \"runs\": [";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const FaultRunRecord &r = runs[i];
            if (i)
                j += ", ";
            j += "{\"seed\": " + std::to_string(r.seed);
            j += ", \"fault\": " + json::str(r.fault.toString());
            j += ", \"target\": " +
                 json::str(inject::toString(r.fault.target));
            j += ", \"kind\": " +
                 json::str(inject::toString(r.fault.kind));
            j += ", \"cycle\": " + std::to_string(r.fault.cycle);
            j += ", \"outcome\": " +
                 json::str(inject::toString(r.outcome));
            j += ", \"cycles\": " + std::to_string(r.cycles);
            j += ", \"detail\": " + json::str(r.detail);
            j += ", \"diverged\": " +
                 std::string(r.diverged ? "true" : "false");
            if (r.diverged) {
                const Divergence &d = r.divergence;
                j += ", \"divergence\": {\"index\": " +
                     std::to_string(d.index) +
                     ", \"cycle\": " + std::to_string(d.cycle) +
                     ", \"pc\": " + std::to_string(d.pc) +
                     ", \"disasm\": " + json::str(d.disasm) +
                     ", \"expected\": " + json::str(d.expected) +
                     ", \"actual\": " + json::str(d.actual) + "}";
            }
            j += "}";
        }
        j += "]";
    }
    j += "}";
    return j;
}

std::string
sweepToJson(const std::vector<CampaignResult> &results,
            bool include_runs)
{
    std::string j = "{\"campaigns\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            j += ", ";
        j += results[i].toJson(include_runs);
    }
    j += "]}";
    return j;
}

// ---- Crash-resilient campaign sweeps -------------------------------

namespace
{

const char *
levelName(opt::OptLevel level)
{
    return level == opt::OptLevel::Scalar ? "scalar" : "ilp";
}

/** Render a double for an identity key (locale-independent). */
std::string
keyDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

/** A config-level failure record (compile / golden run / probe). */
CampaignResult
failedCampaign(const CampaignConfig &cfg, std::string error)
{
    CampaignResult failed;
    failed.workload = cfg.workload;
    failed.label = cfg.label;
    failed.seedBase = cfg.seedBase;
    failed.failed = true;
    failed.error = std::move(error);
    return failed;
}

/** Journal status of a campaign: "ok" or the failure's category. */
bool
campaignStatusValid(const std::string &s)
{
    return s == "ok" || s == toString(ErrorCategory::Transient) ||
           s == toString(ErrorCategory::Hang) ||
           s == toString(ErrorCategory::Corrupt) ||
           s == toString(ErrorCategory::Resource);
}

/** Journal meta carrying the exit-code aggregates. */
std::string
campaignMeta(const CampaignResult &res)
{
    if (res.failed)
        return "failed=1";
    return "failed=0;sdc=" + std::to_string(res.sdc) +
           ";hang=" + std::to_string(res.hang);
}

/** Inverse of campaignMeta(); false when @p meta is unparsable. */
bool
parseCampaignMeta(const std::string &meta, bool &failed, int &sdc,
                  int &hang)
{
    int f = 0;
    int s = 0;
    int h = 0;
    int got = std::sscanf(meta.c_str(), "failed=%d;sdc=%d;hang=%d",
                          &f, &s, &h);
    if (got >= 1 && f == 1) {
        failed = true;
        sdc = 0;
        hang = 0;
        return true;
    }
    if (got == 3 && f == 0) {
        failed = false;
        sdc = s;
        hang = h;
        return true;
    }
    return false;
}

} // namespace

std::string
campaignKey(const CampaignConfig &cfg, bool include_runs)
{
    std::string key = cfg.workload;
    key += "|" + cfg.label;
    key += "|" + cfg.opts.rc.toString();
    key += "|" + std::to_string(cfg.opts.machine.issueWidth) + "w";
    key += std::to_string(cfg.opts.machine.memChannels) + "c";
    key += std::to_string(cfg.opts.machine.lat.loadLatency) + "l";
    key += std::to_string(cfg.opts.machine.lat.connectLatency) + "x";
    key += "|";
    key += levelName(cfg.opts.level);
    key += "|u" + std::to_string(cfg.opts.ilp.maxUnroll);
    key += "|s" + std::to_string(cfg.seedBase) + "+" +
           std::to_string(cfg.seeds);
    key += "|t";
    for (std::size_t i = 0; i < cfg.targets.size(); ++i) {
        if (i)
            key += "+";
        key += toString(cfg.targets[i]);
    }
    key += "|h" + keyDouble(cfg.hangCycleFactor);
    key += "|w" + keyDouble(cfg.wallClockSecs);
    key += include_runs ? "|runs1" : "|runs0";
    return key;
}

std::string
campaignSweepKey(const std::vector<CampaignConfig> &cfgs,
                 bool include_runs)
{
    std::string all;
    for (const CampaignConfig &cfg : cfgs) {
        all += campaignKey(cfg, include_runs);
        all += '\n';
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "campaigns n=%zu;crc=%08x",
                  cfgs.size(), harness::crc32(all));
    return buf;
}

std::string
CampaignSweepReport::toJson() const
{
    std::string j = "{\"campaigns\": [";
    for (std::size_t i = 0; i < campaignJson.size(); ++i) {
        if (i)
            j += ", ";
        j += campaignJson[i];
    }
    j += "]}";
    return j;
}

CampaignSweepReport
runCampaignSweepResilient(const std::vector<CampaignConfig> &cfgs,
                          const CampaignSweepOptions &opts)
{
    const std::size_t n = cfgs.size();
    CampaignSweepReport report;
    report.results.resize(n);
    report.campaignJson.resize(n);
    report.restoredFlags.assign(n, false);

    // Fold a finished campaign into slot i and render its result.
    auto render = [&](std::size_t i, CampaignResult res,
                      ErrorCategory category) {
        harness::TaskResult tr;
        tr.failed = res.failed;
        if (tr.failed)
            tr.category = category;
        tr.status = res.failed ? toString(category) : "ok";
        tr.meta = campaignMeta(res);
        report.results[i] = std::move(res);
        tr.payload = report.results[i].toJson(opts.includeRuns);
        return tr;
    };

    harness::TaskGrid grid;
    grid.key = campaignSweepKey(cfgs, opts.includeRuns);
    grid.size = n;
    grid.kind = "campaign sweep";
    grid.spanName = "campaign.point";
    grid.spanCat = "inject";
    grid.retryCat = "inject";
    grid.faultContext = "running campaign ";
    grid.keyOf = [&](std::size_t i) {
        return campaignKey(cfgs[i], opts.includeRuns);
    };
    grid.run = [&](std::size_t i, const harness::TaskCtx &ctx) {
        // A bad configuration is reported in the sweep result; don't
        // let its panic/fatal print mid-sweep.
        ScopedQuietErrors hush;
        CampaignConfig run_cfg = cfgs[i];
        run_cfg.cancel = ctx.cancel;
        return render(i, runCampaign(run_cfg),
                      ErrorCategory::Corrupt); // category unused: a
                                               // returned result is
                                               // never failed
    };
    grid.fold = [&](std::size_t i, const std::exception &e,
                    const harness::TaskCtx &) {
        ErrorCategory category = classifyException(e);
        CampaignResult res;
        if (auto *rc = dynamic_cast<const RcError *>(&e))
            res = failedCampaign(cfgs[i], rc->describe());
        else
            res = failedCampaign(cfgs[i], e.what());
        return render(i, std::move(res), category);
    };
    grid.stall = [&](std::size_t i, const harness::TaskCtx &) {
        return render(i,
                      failedCampaign(cfgs[i],
                                     "stalled worker cancelled by "
                                     "wall-clock watchdog"),
                      ErrorCategory::Hang);
    };
    grid.restore = [&](const harness::JournalRecord &rec,
                       harness::TaskResult &tr) {
        bool failed = false;
        int sdc = 0;
        int hang = 0;
        if (!campaignStatusValid(rec.status) ||
            !parseCampaignMeta(rec.meta, failed, sdc, hang))
            return false;
        CampaignResult res;
        res.workload = cfgs[rec.index].workload;
        res.label = cfgs[rec.index].label;
        res.seedBase = cfgs[rec.index].seedBase;
        res.failed = failed;
        res.sdc = sdc;
        res.hang = hang;
        report.results[rec.index] = std::move(res);
        tr.failed = failed;
        return true;
    };

    harness::ExecutorOptions eo;
    // Campaigns run serially at the grid level: each one already
    // fans its faulted replays out over CampaignConfig::jobs.
    eo.jobs = 1;
    eo.journal = opts.journal;
    eo.resume = opts.resume;
    eo.deadlineMs = opts.deadlineMs;
    eo.retries = opts.retries;
    eo.backoffBaseMs = opts.backoffBaseMs;
    eo.backoffMaxMs = opts.backoffMaxMs;

    harness::ExecutorReport er = harness::runTasks(grid, eo);

    for (std::size_t i = 0; i < n; ++i) {
        report.campaignJson[i] = std::move(er.results[i].payload);
        report.restoredFlags[i] = er.restoredFlags[i] != 0;
    }
    report.restored = er.restored;
    report.retries = er.retries;
    report.journalQuarantined = er.journalQuarantined;
    report.journalTruncated = er.journalTruncated;
    for (const CampaignResult &res : report.results) {
        if (res.failed)
            ++report.failedConfigs;
        report.sdc += res.sdc;
        report.hang += res.hang;
    }
    return report;
}

CampaignSweepReport
resumeCampaign(const std::vector<CampaignConfig> &cfgs,
               CampaignSweepOptions opts)
{
    opts.resume = true;
    return runCampaignSweepResilient(cfgs, opts);
}

} // namespace rcsim::inject
