/**
 * @file
 * The instruction-level divergence oracle.
 *
 * Verification used to compare only the final checksum, so any
 * mid-run corruption surfaced as an opaque "checksum mismatch".  The
 * oracle upgrades this: a golden run (a clean simulation whose final
 * result is itself verified against the reference interpreter)
 * records the stream of committed architectural effects — register
 * writebacks and stores — and a checked run is compared against that
 * stream effect by effect.  The first mismatch is reported with its
 * cycle, pc and disassembly, localizing a fault or model bug to the
 * exact instruction where architectural state first went wrong.
 *
 * Comparison ignores the cycle field: timing legitimately shifts
 * (e.g. a corrupted map changes interlock patterns) while the
 * architectural effect sequence must not.
 */

#ifndef RCSIM_INJECT_ORACLE_HH
#define RCSIM_INJECT_ORACLE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/probe.hh"

namespace rcsim::inject
{

/** Where two commit streams first differ. */
struct Divergence
{
    bool diverged = false;
    std::size_t index = 0; // position in the commit stream
    Cycle cycle = 0;       // checked run's cycle at divergence
    std::int32_t pc = 0;   // checked run's pc at divergence
    std::string disasm;    // disassembly of the divergent instruction
    std::string expected;  // golden effect ("<end of stream>" if none)
    std::string actual;    // checked effect ("<missing>" if short)

    /** One-line report for logs and JSON. */
    std::string toString() const;

    /**
     * Deterministic JSON object ({"index":..,"cycle":..,"pc":..,
     * "disasm":..,"expected":..,"actual":..}; {"diverged":false}
     * when clean) for machine-readable reports (rcfuzz payloads).
     */
    std::string toJson() const;
};

/** Records the committed-effects stream of a (golden) run. */
class CommitRecorder : public sim::SimProbe
{
  public:
    /** @param cap stop recording past this many effects (safety). */
    explicit CommitRecorder(std::size_t cap = std::size_t(1) << 26)
        : cap_(cap)
    {
    }

    void
    onCommit(const sim::CommitEffect &effect) override
    {
        if (log_.size() < cap_)
            log_.push_back(effect);
        else
            truncated_ = true;
    }

    const std::vector<sim::CommitEffect> &log() const { return log_; }
    bool truncated() const { return truncated_; }

  private:
    std::vector<sim::CommitEffect> log_;
    std::size_t cap_;
    bool truncated_ = false;
};

/**
 * Compares a run's commit stream against a golden log online and
 * captures the first divergence.
 */
class DivergenceChecker : public sim::SimProbe
{
  public:
    /**
     * @param golden the golden run's commit log (must outlive this)
     * @param prog   the checked run's program, for disassembly
     */
    DivergenceChecker(const std::vector<sim::CommitEffect> &golden,
                      const isa::Program &prog)
        : golden_(golden), prog_(prog)
    {
    }

    void onCommit(const sim::CommitEffect &effect) override;

    /**
     * Finish the comparison: a checked run that stopped short of the
     * golden stream also diverges (at the first missing effect).
     * Call after the checked run completed.
     */
    const Divergence &finish();

    /** Effects seen so far. */
    std::size_t seen() const { return seen_; }

    const Divergence &divergence() const { return div_; }

  private:
    const std::vector<sim::CommitEffect> &golden_;
    const isa::Program &prog_;
    Divergence div_;
    std::size_t seen_ = 0;
    bool finished_ = false;
};

/**
 * True when two effects are architecturally equal (same kind,
 * location and value; timing excluded).
 */
bool effectsEqual(const sim::CommitEffect &a,
                  const sim::CommitEffect &b);

/** Offline variant: first divergence between two recorded logs. */
Divergence firstDivergence(
    const std::vector<sim::CommitEffect> &golden,
    const std::vector<sim::CommitEffect> &checked,
    const isa::Program &prog);

} // namespace rcsim::inject

#endif // RCSIM_INJECT_ORACLE_HH
