#include "inject/fault.hh"

namespace rcsim::inject
{

const char *
toString(FaultTarget target)
{
    switch (target) {
      case FaultTarget::ReadMap:
        return "read-map";
      case FaultTarget::WriteMap:
        return "write-map";
      case FaultTarget::IntReg:
        return "int-reg";
      case FaultTarget::FpReg:
        return "fp-reg";
      case FaultTarget::Psw:
        return "psw";
      case FaultTarget::Instruction:
        return "instruction";
    }
    return "unknown";
}

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BitFlip:
        return "bit-flip";
      case FaultKind::StuckAt0:
        return "stuck-at-0";
      case FaultKind::StuckAt1:
        return "stuck-at-1";
    }
    return "unknown";
}

std::string
Fault::toString() const
{
    std::string s = inject::toString(kind);
    s += " ";
    s += inject::toString(target);
    if (target != FaultTarget::Psw) {
        if (target == FaultTarget::ReadMap ||
            target == FaultTarget::WriteMap ||
            target == FaultTarget::IntReg ||
            target == FaultTarget::FpReg) {
            s += cls == isa::RegClass::Int ? " int" : " fp";
        }
        s += "[" + std::to_string(index) + "]";
    }
    s += " bit " + std::to_string(bit) + " @ cycle " +
         std::to_string(cycle);
    return s;
}

int
mapEntryBits(int phys_regs)
{
    int bits = 1;
    while ((1 << bits) < phys_regs)
        ++bits;
    return bits;
}

std::vector<FaultTarget>
parseTargets(const std::string &spec)
{
    std::vector<FaultTarget> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "map") {
            out.push_back(FaultTarget::ReadMap);
            out.push_back(FaultTarget::WriteMap);
        } else if (tok == "read-map") {
            out.push_back(FaultTarget::ReadMap);
        } else if (tok == "write-map") {
            out.push_back(FaultTarget::WriteMap);
        } else if (tok == "regfile") {
            out.push_back(FaultTarget::IntReg);
            out.push_back(FaultTarget::FpReg);
        } else if (tok == "psw") {
            out.push_back(FaultTarget::Psw);
        } else if (tok == "instr") {
            out.push_back(FaultTarget::Instruction);
        } else if (tok == "all") {
            out.push_back(FaultTarget::ReadMap);
            out.push_back(FaultTarget::WriteMap);
            out.push_back(FaultTarget::IntReg);
            out.push_back(FaultTarget::FpReg);
            out.push_back(FaultTarget::Psw);
            out.push_back(FaultTarget::Instruction);
        } else {
            return {};
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

Fault
planFault(SplitMix &rng, const std::vector<FaultTarget> &targets,
          const FaultSpace &space)
{
    Fault f;
    f.target = targets[rng.below(
        static_cast<std::uint32_t>(targets.size()))];
    switch (rng.below(3)) {
      case 0:
        f.kind = FaultKind::BitFlip;
        break;
      case 1:
        f.kind = FaultKind::StuckAt0;
        break;
      default:
        f.kind = FaultKind::StuckAt1;
        break;
    }
    f.cycle = rng.next() %
              (space.maxCycle > 0 ? space.maxCycle : 1);
    f.cls = space.cls;

    switch (f.target) {
      case FaultTarget::ReadMap:
      case FaultTarget::WriteMap:
        f.index = static_cast<int>(rng.below(
            static_cast<std::uint32_t>(space.rc.core(space.cls))));
        f.bit = static_cast<int>(rng.below(static_cast<std::uint32_t>(
            mapEntryBits(space.rc.total(space.cls)))));
        break;
      case FaultTarget::IntReg:
        f.cls = isa::RegClass::Int;
        f.index = static_cast<int>(rng.below(static_cast<std::uint32_t>(
            space.rc.total(isa::RegClass::Int))));
        f.bit = static_cast<int>(rng.below(32));
        break;
      case FaultTarget::FpReg:
        f.cls = isa::RegClass::Fp;
        f.index = static_cast<int>(rng.below(static_cast<std::uint32_t>(
            space.rc.total(isa::RegClass::Fp))));
        f.bit = static_cast<int>(rng.below(64));
        break;
      case FaultTarget::Psw:
        f.index = 0;
        // Bits 0-1 are architected (map enable, context format);
        // bits 2-3 are spare, so some PSW faults are trivially
        // masked, as on real hardware.
        f.bit = static_cast<int>(rng.below(4));
        break;
      case FaultTarget::Instruction:
        f.index = static_cast<int>(rng.below(static_cast<std::uint32_t>(
            space.codeSize > 0 ? space.codeSize : 1)));
        f.bit = static_cast<int>(rng.below(32));
        break;
    }
    return f;
}

} // namespace rcsim::inject
