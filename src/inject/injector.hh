/**
 * @file
 * The fault-injection engine: a SimProbe that applies one planned
 * Fault to a running simulation.
 *
 * Bit flips are transient (applied once, at the first cycle boundary
 * at or after the fault cycle); stuck-at faults are persistent (the
 * targeted bit is re-forced every cycle from the fault cycle on).
 * Instruction faults corrupt the *encoded* 32-bit instruction word:
 * the word is encoded, the bit corrupted, and the result decoded
 * back — a word that no longer decodes becomes an illegal
 * instruction that the simulator detects when (and only when) it is
 * fetched, exactly like hardware would.
 */

#ifndef RCSIM_INJECT_INJECTOR_HH
#define RCSIM_INJECT_INJECTOR_HH

#include <string>

#include "inject/fault.hh"
#include "isa/instruction.hh"
#include "sim/simulator.hh"

namespace rcsim::inject
{

/** Applies one Fault to a simulation via the probe hooks. */
class FaultInjector : public sim::SimProbe
{
  public:
    /**
     * @param prog  the program the simulator executes; mutated in
     *              place by Instruction faults, so it must be the
     *              caller's own copy and must outlive the injector
     * @param fault the planned fault
     */
    FaultInjector(isa::Program &prog, const Fault &fault);

    void onCycle(sim::Simulator &sim, Cycle cycle) override;

    /** Whether the fault has been applied at least once. */
    bool applied() const { return applied_; }

    /** Human-readable description of the first application. */
    const std::string &note() const { return note_; }

    const Fault &fault() const { return fault_; }

  private:
    void apply(sim::Simulator &sim);

    /** Corrupt @p value according to the fault kind and bit. */
    std::uint64_t mutate(std::uint64_t value) const;

    isa::Program &prog_;
    Fault fault_;
    bool applied_ = false;
    std::string note_;
};

} // namespace rcsim::inject

#endif // RCSIM_INJECT_INJECTOR_HH
