#include "inject/oracle.hh"

#include "support/json.hh"

namespace rcsim::inject
{

bool
effectsEqual(const sim::CommitEffect &a, const sim::CommitEffect &b)
{
    return a.kind == b.kind && a.pc == b.pc && a.loc == b.loc &&
           a.addr == b.addr && a.bits == b.bits;
}

std::string
Divergence::toString() const
{
    if (!diverged)
        return "no divergence";
    return "first divergence at commit #" + std::to_string(index) +
           ", cycle " + std::to_string(cycle) + ", pc " +
           std::to_string(pc) + " (" + disasm + "): expected " +
           expected + ", got " + actual;
}

std::string
Divergence::toJson() const
{
    if (!diverged)
        return "{\"diverged\":false}";
    return "{\"diverged\":true,\"index\":" + std::to_string(index) +
           ",\"cycle\":" + std::to_string(cycle) +
           ",\"pc\":" + std::to_string(pc) +
           ",\"disasm\":" + json::str(disasm) +
           ",\"expected\":" + json::str(expected) +
           ",\"actual\":" + json::str(actual) + "}";
}

namespace
{

std::string
disasmAt(const isa::Program &prog, std::int32_t pc)
{
    if (pc < 0 || pc >= static_cast<std::int32_t>(prog.code.size()))
        return "<pc out of range>";
    const isa::Instruction &ins = prog.code[pc];
    if (static_cast<std::size_t>(ins.op) >=
        static_cast<std::size_t>(isa::Opcode::NUM_OPCODES))
        return "<illegal encoding>";
    return ins.toString();
}

} // namespace

void
DivergenceChecker::onCommit(const sim::CommitEffect &effect)
{
    std::size_t i = seen_++;
    if (div_.diverged)
        return;
    if (i >= golden_.size()) {
        div_.diverged = true;
        div_.index = i;
        div_.cycle = effect.cycle;
        div_.pc = effect.pc;
        div_.disasm = disasmAt(prog_, effect.pc);
        div_.expected = "<end of stream>";
        div_.actual = effect.toString();
        return;
    }
    if (!effectsEqual(golden_[i], effect)) {
        div_.diverged = true;
        div_.index = i;
        div_.cycle = effect.cycle;
        div_.pc = effect.pc;
        div_.disasm = disasmAt(prog_, effect.pc);
        div_.expected = golden_[i].toString();
        div_.actual = effect.toString();
    }
}

const Divergence &
DivergenceChecker::finish()
{
    if (!finished_) {
        finished_ = true;
        if (!div_.diverged && seen_ < golden_.size()) {
            const sim::CommitEffect &miss = golden_[seen_];
            div_.diverged = true;
            div_.index = seen_;
            div_.cycle = miss.cycle;
            div_.pc = miss.pc;
            div_.disasm = disasmAt(prog_, miss.pc);
            div_.expected = miss.toString();
            div_.actual = "<missing>";
        }
    }
    return div_;
}

Divergence
firstDivergence(const std::vector<sim::CommitEffect> &golden,
                const std::vector<sim::CommitEffect> &checked,
                const isa::Program &prog)
{
    DivergenceChecker checker(golden, prog);
    for (const sim::CommitEffect &e : checked)
        checker.onCommit(e);
    return checker.finish();
}

} // namespace rcsim::inject
