#include "inject/injector.hh"

#include <bit>

#include "isa/encoding.hh"

namespace rcsim::inject
{

using core::PhysIndex;

FaultInjector::FaultInjector(isa::Program &prog, const Fault &fault)
    : prog_(prog), fault_(fault)
{
}

std::uint64_t
FaultInjector::mutate(std::uint64_t value) const
{
    std::uint64_t mask = 1ull << fault_.bit;
    switch (fault_.kind) {
      case FaultKind::BitFlip:
        return value ^ mask;
      case FaultKind::StuckAt0:
        return value & ~mask;
      case FaultKind::StuckAt1:
        return value | mask;
    }
    return value;
}

void
FaultInjector::onCycle(sim::Simulator &sim, Cycle cycle)
{
    if (cycle < fault_.cycle)
        return;
    // Transient flips and instruction-word corruption fire once;
    // stuck-at faults on state re-force the bit every cycle.
    if (applied_ && (fault_.kind == FaultKind::BitFlip ||
                     fault_.target == FaultTarget::Instruction))
        return;
    apply(sim);
}

void
FaultInjector::apply(sim::Simulator &sim)
{
    bool first = !applied_;
    applied_ = true;
    sim::MachineState &state = sim.state();

    switch (fault_.target) {
      case FaultTarget::ReadMap:
      case FaultTarget::WriteMap: {
        core::RegisterMappingTable &map = state.map(fault_.cls);
        bool is_read = fault_.target == FaultTarget::ReadMap;
        PhysIndex old = is_read ? map.readMap(fault_.index)
                                : map.writeMap(fault_.index);
        // A map entry is ceil(log2 n) bits wide; when n is not a
        // power of two the corrupted value wraps (the decoder's
        // high-order don't-cares).
        std::uint64_t width_mask =
            (1ull << mapEntryBits(map.physRegs())) - 1;
        auto neu = static_cast<PhysIndex>(
            (mutate(old) & width_mask) %
            static_cast<std::uint64_t>(map.physRegs()));
        if (neu != old) {
            if (is_read)
                map.connectUse(fault_.index, neu);
            else
                map.connectDef(fault_.index, neu);
        }
        if (first)
            note_ = std::string(is_read ? "read" : "write") +
                    " map[" + std::to_string(fault_.index) +
                    "]: p" + std::to_string(old) + " -> p" +
                    std::to_string(neu);
        break;
      }

      case FaultTarget::IntReg: {
        Word old = state.readInt(fault_.index);
        auto neu = static_cast<Word>(static_cast<UWord>(
            mutate(static_cast<UWord>(old))));
        state.writeInt(fault_.index, neu);
        if (first)
            note_ = "ireg[" + std::to_string(fault_.index) + "]: " +
                    std::to_string(old) + " -> " +
                    std::to_string(neu);
        break;
      }

      case FaultTarget::FpReg: {
        double old = state.readFp(fault_.index);
        double neu = std::bit_cast<double>(
            mutate(std::bit_cast<std::uint64_t>(old)));
        state.writeFp(fault_.index, neu);
        if (first)
            note_ = "freg[" + std::to_string(fault_.index) +
                    "] bit " + std::to_string(fault_.bit) +
                    " corrupted";
        break;
      }

      case FaultTarget::Psw: {
        UWord old = state.psw().bits;
        state.psw().bits = static_cast<UWord>(mutate(old));
        if (first)
            note_ = "psw: " + std::to_string(old) + " -> " +
                    std::to_string(state.psw().bits);
        break;
      }

      case FaultTarget::Instruction: {
        isa::Instruction &ins = prog_.code[fault_.index];
        isa::EncodeResult er = isa::encode(
            ins, static_cast<std::int32_t>(fault_.index));
        if (!er.ok()) {
            note_ = "instruction not encodable; fault has no effect";
            break;
        }
        isa::MachineWord word = static_cast<isa::MachineWord>(
            mutate(er.word));
        if (word == er.word) {
            note_ = "stuck-at matched the stored bit; no change";
            break;
        }
        std::string before = ins.toString();
        auto decoded = isa::decode(
            word, static_cast<std::int32_t>(fault_.index));
        if (decoded) {
            ins = *decoded;
            note_ = "instr[" + std::to_string(fault_.index) +
                    "]: '" + before + "' -> '" + ins.toString() +
                    "'";
        } else {
            // The corrupted word no longer decodes: executing it
            // raises an illegal-instruction fault.
            ins = isa::Instruction{};
            ins.op = isa::Opcode::NUM_OPCODES;
            note_ = "instr[" + std::to_string(fault_.index) +
                    "]: '" + before + "' -> illegal encoding";
        }
        // The program text changed under the simulator: drop its
        // predecoded view (probe contract, sim/simulator.hh).
        sim.invalidatePredecode();
        break;
      }
    }
}

} // namespace rcsim::inject
