/**
 * @file
 * Seeded fault-injection campaigns with outcome classification.
 *
 * A campaign compiles one workload under one configuration, records
 * a golden commit stream (verified against the reference
 * interpreter), then replays the workload N times, each run with one
 * seeded fault injected, and classifies every run:
 *
 *  - masked    the run completed with the correct checksum
 *  - detected  an architectural check fired (illegal instruction,
 *              out-of-range operand, trap without a vector, or any
 *              other simulation error / model assertion)
 *  - sdc       silent data corruption: the run completed "cleanly"
 *              but produced the wrong checksum; the divergence
 *              oracle localizes the first wrong commit
 *  - hang      the run exceeded the cycle budget (a multiple of the
 *              golden cycle count) or the wall-clock watchdog
 *
 * Campaign sweeps degrade gracefully: a configuration whose compile
 * or golden run panics is reported as a failed CampaignResult while
 * the remaining configurations still run.
 */

#ifndef RCSIM_INJECT_CAMPAIGN_HH
#define RCSIM_INJECT_CAMPAIGN_HH

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "inject/fault.hh"
#include "inject/oracle.hh"

namespace rcsim::inject
{

/** Parameters of one campaign (one workload, one configuration). */
struct CampaignConfig
{
    /** Workload name in the registry. */
    std::string workload = "compress";

    /** Compile + machine configuration under test. */
    harness::CompileOptions opts;

    /** Short tag for reports, e.g. "model3". */
    std::string label;

    /** Seeds seedBase .. seedBase + seeds - 1, one fault each. */
    std::uint64_t seedBase = 1;
    int seeds = 50;

    /** Fault targets drawn from (see parseTargets()). */
    std::vector<FaultTarget> targets = {FaultTarget::ReadMap,
                                        FaultTarget::WriteMap};

    /** Hang threshold: goldenCycles * factor + 10000. */
    double hangCycleFactor = 4.0;

    /** Per-run wall-clock watchdog in seconds; 0 disables. */
    double wallClockSecs = 10.0;

    /**
     * Worker threads for the faulted replays: 1 = serial, 0 = auto
     * (harness::resolveJobs).  Every seed writes its own record slot,
     * so the result — including the JSON rendering — is byte-
     * identical to the serial path at any job count.
     */
    int jobs = 1;

    /**
     * Cooperative wall-clock cancellation flag (see SimConfig::cancel),
     * polled by the golden run and every faulted replay.  A golden run
     * cancelled this way throws RcError{Hang}; a cancelled replay is
     * classified FaultOutcome::Hang.  Not part of the campaign's
     * identity key — it is an operational knob, not a parameter.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** Classification of one faulted run. */
enum class FaultOutcome : std::uint8_t
{
    Masked,
    Detected,
    Sdc,
    Hang,
};

const char *toString(FaultOutcome outcome);

/** One faulted run's record. */
struct FaultRunRecord
{
    std::uint64_t seed = 0;
    Fault fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    std::string detail; // error text / injector note
    Cycle cycles = 0;   // cycles simulated before stopping
    bool diverged = false;
    Divergence divergence;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::string workload;
    std::string label;
    std::string rcDesc; // RcConfig::toString()

    /** Config-level failure (compile / golden run); runs are empty. */
    bool failed = false;
    std::string error;

    Cycle goldenCycles = 0;
    Count goldenCommits = 0;
    std::uint64_t seedBase = 0;

    int masked = 0;
    int detected = 0;
    int sdc = 0;
    int hang = 0;

    std::vector<FaultRunRecord> runs;

    /**
     * Deterministic JSON rendering: the same campaign configuration
     * and seed produce byte-identical output.
     *
     * @param include_runs include the per-run array, not only the
     *                     aggregate counters
     */
    std::string toJson(bool include_runs = true) const;
};

/** Run one campaign.  Throws on configuration-level failures. */
CampaignResult runCampaign(const CampaignConfig &cfg);

/**
 * Run several campaigns, converting RcError / PanicError / FatalError
 * escaping any single configuration into a failed CampaignResult so
 * the rest of the sweep still runs.
 */
std::vector<CampaignResult>
runCampaignSweep(const std::vector<CampaignConfig> &cfgs);

/** Render a sweep as one JSON document. */
std::string sweepToJson(const std::vector<CampaignResult> &results,
                        bool include_runs = true);

// ---- Crash-resilient campaign sweeps -------------------------------
//
// The resilient runner wraps runCampaign() in the same four defenses
// as harness::runSweepResilient(): a durable JSONL journal, resume
// with byte-identical final JSON, a per-campaign wall-clock watchdog
// (cooperative, via CampaignConfig::cancel), and retry-with-backoff
// for Transient failures only.  Each campaign configuration is one
// journal point; the per-seed replays inside a campaign already
// parallelize via CampaignConfig::jobs.

/** Knobs for a resilient campaign sweep. */
struct CampaignSweepOptions
{
    std::string journal;     // journal path; empty = no journal
    bool resume = false;     // restore completed campaigns
    int deadlineMs = 0;      // per-campaign deadline; 0 = off
    int retries = 0;         // extra attempts, Transient only
    int backoffBaseMs = 100; // first retry delay
    int backoffMaxMs = 2000; // backoff growth cap
    bool includeRuns = true; // render per-run arrays in the JSON
};

/** Outcome of a resilient campaign sweep. */
struct CampaignSweepReport
{
    /**
     * Grid order.  Restored entries carry only the identity fields
     * plus the failed flag and sdc/hang counters recovered from the
     * journal meta — enough for the exit-code contract; their full
     * JSON lives in campaignJson.
     */
    std::vector<CampaignResult> results;
    std::vector<std::string> campaignJson; // rendered per-campaign
    std::vector<bool> restoredFlags;       // grid order

    std::size_t restored = 0; // campaigns skipped via the journal
    std::size_t retries = 0;  // retry attempts performed
    std::size_t journalQuarantined = 0; // corrupt journal records
    bool journalTruncated = false;      // journal had a torn tail

    int failedConfigs = 0; // configs that never produced a result
    int sdc = 0;           // total silent corruptions, all configs
    int hang = 0;          // total hangs, all configs

    /**
     * Byte-identical to sweepToJson(runCampaignSweep(cfgs),
     * include_runs) for the same grid — uninterrupted or resumed.
     */
    std::string toJson() const;
};

/** Identity key of one campaign configuration (journal validation). */
std::string campaignKey(const CampaignConfig &cfg, bool include_runs);

/** Identity key of the whole sweep (journal header). */
std::string campaignSweepKey(const std::vector<CampaignConfig> &cfgs,
                             bool include_runs);

/** Run a campaign sweep with journaling / resume / watchdog / retry. */
CampaignSweepReport
runCampaignSweepResilient(const std::vector<CampaignConfig> &cfgs,
                          const CampaignSweepOptions &opts);

/** runCampaignSweepResilient() with opts.resume forced on. */
CampaignSweepReport
resumeCampaign(const std::vector<CampaignConfig> &cfgs,
               CampaignSweepOptions opts);

} // namespace rcsim::inject

#endif // RCSIM_INJECT_CAMPAIGN_HH
