/**
 * @file
 * Seeded fault-injection campaigns with outcome classification.
 *
 * A campaign compiles one workload under one configuration, records
 * a golden commit stream (verified against the reference
 * interpreter), then replays the workload N times, each run with one
 * seeded fault injected, and classifies every run:
 *
 *  - masked    the run completed with the correct checksum
 *  - detected  an architectural check fired (illegal instruction,
 *              out-of-range operand, trap without a vector, or any
 *              other simulation error / model assertion)
 *  - sdc       silent data corruption: the run completed "cleanly"
 *              but produced the wrong checksum; the divergence
 *              oracle localizes the first wrong commit
 *  - hang      the run exceeded the cycle budget (a multiple of the
 *              golden cycle count) or the wall-clock watchdog
 *
 * Campaign sweeps degrade gracefully: a configuration whose compile
 * or golden run panics is reported as a failed CampaignResult while
 * the remaining configurations still run.
 */

#ifndef RCSIM_INJECT_CAMPAIGN_HH
#define RCSIM_INJECT_CAMPAIGN_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "inject/fault.hh"
#include "inject/oracle.hh"

namespace rcsim::inject
{

/** Parameters of one campaign (one workload, one configuration). */
struct CampaignConfig
{
    /** Workload name in the registry. */
    std::string workload = "compress";

    /** Compile + machine configuration under test. */
    harness::CompileOptions opts;

    /** Short tag for reports, e.g. "model3". */
    std::string label;

    /** Seeds seedBase .. seedBase + seeds - 1, one fault each. */
    std::uint64_t seedBase = 1;
    int seeds = 50;

    /** Fault targets drawn from (see parseTargets()). */
    std::vector<FaultTarget> targets = {FaultTarget::ReadMap,
                                        FaultTarget::WriteMap};

    /** Hang threshold: goldenCycles * factor + 10000. */
    double hangCycleFactor = 4.0;

    /** Per-run wall-clock watchdog in seconds; 0 disables. */
    double wallClockSecs = 10.0;

    /**
     * Worker threads for the faulted replays: 1 = serial, 0 = auto
     * (harness::resolveJobs).  Every seed writes its own record slot,
     * so the result — including the JSON rendering — is byte-
     * identical to the serial path at any job count.
     */
    int jobs = 1;
};

/** Classification of one faulted run. */
enum class FaultOutcome : std::uint8_t
{
    Masked,
    Detected,
    Sdc,
    Hang,
};

const char *toString(FaultOutcome outcome);

/** One faulted run's record. */
struct FaultRunRecord
{
    std::uint64_t seed = 0;
    Fault fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    std::string detail; // error text / injector note
    Cycle cycles = 0;   // cycles simulated before stopping
    bool diverged = false;
    Divergence divergence;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::string workload;
    std::string label;
    std::string rcDesc; // RcConfig::toString()

    /** Config-level failure (compile / golden run); runs are empty. */
    bool failed = false;
    std::string error;

    Cycle goldenCycles = 0;
    Count goldenCommits = 0;
    std::uint64_t seedBase = 0;

    int masked = 0;
    int detected = 0;
    int sdc = 0;
    int hang = 0;

    std::vector<FaultRunRecord> runs;

    /**
     * Deterministic JSON rendering: the same campaign configuration
     * and seed produce byte-identical output.
     *
     * @param include_runs include the per-run array, not only the
     *                     aggregate counters
     */
    std::string toJson(bool include_runs = true) const;
};

/** Run one campaign.  Throws on configuration-level failures. */
CampaignResult runCampaign(const CampaignConfig &cfg);

/**
 * Run several campaigns, converting PanicError / FatalError escaping
 * any single configuration into a failed CampaignResult so the rest
 * of the sweep still runs.
 */
std::vector<CampaignResult>
runCampaignSweep(const std::vector<CampaignConfig> &cfgs);

/** Render a sweep as one JSON document. */
std::string sweepToJson(const std::vector<CampaignResult> &results,
                        bool include_runs = true);

} // namespace rcsim::inject

#endif // RCSIM_INJECT_CAMPAIGN_HH
