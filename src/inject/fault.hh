/**
 * @file
 * The fault model for robustness campaigns.
 *
 * A Fault describes one seeded hardware fault: a transient bit flip
 * or a persistent stuck-at, aimed at the architectural structures the
 * RC extension adds or touches — the register mapping tables (read
 * and write maps), the enlarged physical register files, the PSW
 * control bits, and fetched instruction words.  Faults are planned
 * deterministically from a seed so campaigns are reproducible
 * bit-for-bit.
 */

#ifndef RCSIM_INJECT_FAULT_HH
#define RCSIM_INJECT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/rc_config.hh"
#include "isa/reg.hh"
#include "support/random.hh"
#include "support/types.hh"

namespace rcsim::inject
{

/** Which architectural structure the fault hits. */
enum class FaultTarget : std::uint8_t
{
    ReadMap,     // read map entry of the mapping table
    WriteMap,    // write map entry of the mapping table
    IntReg,      // integer physical register file
    FpReg,       // floating-point physical register file
    Psw,         // processor status word control bits
    Instruction, // fetched instruction word (encoded 32-bit form)
};

/** How the targeted bit is corrupted. */
enum class FaultKind : std::uint8_t
{
    BitFlip, // transient: the bit is inverted once
    StuckAt0, // persistent: the bit reads 0 from the fault cycle on
    StuckAt1, // persistent: the bit reads 1 from the fault cycle on
};

const char *toString(FaultTarget target);
const char *toString(FaultKind kind);

/** One planned fault. */
struct Fault
{
    FaultTarget target = FaultTarget::ReadMap;
    FaultKind kind = FaultKind::BitFlip;

    /** First cycle at which the fault is active. */
    Cycle cycle = 0;

    /** Register class of the targeted map / register file. */
    isa::RegClass cls = isa::RegClass::Int;

    /** Map entry, physical register, or instruction index. */
    int index = 0;

    /** Bit position within the targeted storage element. */
    int bit = 0;

    /** e.g. "bit-flip read-map int[5] bit 3 @ cycle 120". */
    std::string toString() const;
};

/** Bounds the fault planner draws from. */
struct FaultSpace
{
    core::RcConfig rc;

    /** Register class under study (int file for int workloads). */
    isa::RegClass cls = isa::RegClass::Int;

    /** Static code size (Instruction faults). */
    int codeSize = 0;

    /** Fault cycles are drawn from [0, maxCycle). */
    Cycle maxCycle = 1;
};

/**
 * Parse a target-set specification: a comma-separated list of
 * "map" (read + write maps), "read-map", "write-map", "regfile",
 * "psw", "instr" and "all".  Returns an empty vector on a bad token.
 */
std::vector<FaultTarget> parseTargets(const std::string &spec);

/**
 * Draw one fault uniformly from @p targets and the bounds of
 * @p space, consuming entropy from @p rng.  Deterministic: the same
 * generator state and space produce the same fault.
 */
Fault planFault(SplitMix &rng, const std::vector<FaultTarget> &targets,
                const FaultSpace &space);

/** Number of bits in a mapping-table entry: ceil(log2(phys_regs)). */
int mapEntryBits(int phys_regs);

} // namespace rcsim::inject

#endif // RCSIM_INJECT_FAULT_HH
