/**
 * @file
 * Structured error taxonomy for the run harness.
 *
 * Long sweeps and fault campaigns must never die on an uncaught
 * exception: every failure crossing the harness boundary is folded
 * into one of four categories that drive the retry / quarantine
 * policy (harness/sweep.hh):
 *
 *  - Transient  environmental and injected hiccups (I/O, the
 *               RCSIM_HARNESS_FAULT throw probe).  The only category
 *               the sweep runner retries, with bounded exponential
 *               backoff.
 *  - Hang       the run exceeded a cycle budget or wall-clock
 *               deadline.  Never retried: the runs are deterministic,
 *               so a hang reproduces.
 *  - Corrupt    wrong answers and broken invariants (checksum
 *               mismatch, PanicError, bad journal records).  Never
 *               retried; quarantined for investigation.
 *  - Resource   the environment refused the work (bad configuration,
 *               out of memory, unwritable journal).  Never retried.
 *
 * RcError carries its category plus a context chain ("while ...")
 * that call sites push as the error propagates outward, so a
 * quarantine report names the full path to the failure.
 */

#ifndef RCSIM_SUPPORT_ERROR_HH
#define RCSIM_SUPPORT_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rcsim
{

/** The four failure categories of the harness taxonomy. */
enum class ErrorCategory : std::uint8_t
{
    Transient, // retryable environmental hiccup
    Hang,      // cycle budget / wall-clock deadline exceeded
    Corrupt,   // wrong answer or broken invariant
    Resource,  // environment refused the work (config, memory, I/O)
};

const char *toString(ErrorCategory category);

/** Only Transient failures are ever retried. */
inline bool
isRetryable(ErrorCategory category)
{
    return category == ErrorCategory::Transient;
}

/** A categorized harness error with a context chain. */
class RcError : public std::runtime_error
{
  public:
    RcError(ErrorCategory category, const std::string &msg)
        : std::runtime_error(msg), category_(category)
    {
    }

    ErrorCategory category() const { return category_; }

    /** Push one "while ..." frame; returns *this for chaining. */
    RcError &
    addContext(std::string frame)
    {
        context_.push_back(std::move(frame));
        return *this;
    }

    const std::vector<std::string> &context() const { return context_; }

    /**
     * "category: message (while inner; while outer)" — the full
     * chain, innermost frame first.
     */
    std::string describe() const;

  private:
    ErrorCategory category_;
    std::vector<std::string> context_;
};

/**
 * Fold an arbitrary exception into the taxonomy: RcError keeps its
 * own category; PanicError (broken rcsim invariant) is Corrupt;
 * FatalError (configuration refused) and std::bad_alloc are
 * Resource; anything else is Corrupt — an exception type the harness
 * does not know about means an invariant it did not model.
 */
ErrorCategory classifyException(const std::exception &e);

} // namespace rcsim

#endif // RCSIM_SUPPORT_ERROR_HH
