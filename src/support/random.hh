/**
 * @file
 * Deterministic pseudo-random number generator for workload data.
 *
 * Workload inputs must be bit-identical across runs and platforms so
 * that experiments are reproducible; std::mt19937 would also work but a
 * tiny explicit generator makes the contract obvious and keeps workload
 * initialisation out of <random>'s distribution variance.
 */

#ifndef RCSIM_SUPPORT_RANDOM_HH
#define RCSIM_SUPPORT_RANDOM_HH

#include <cstdint>

namespace rcsim
{

/** xorshift64* generator; deterministic for a given seed. */
class SplitMix
{
  public:
    explicit SplitMix(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b9)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        return static_cast<std::uint32_t>(next() % bound);
    }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace rcsim

#endif // RCSIM_SUPPORT_RANDOM_HH
