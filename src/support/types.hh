/**
 * @file
 * Fundamental scalar types shared by every rcsim module.
 */

#ifndef RCSIM_SUPPORT_TYPES_HH
#define RCSIM_SUPPORT_TYPES_HH

#include <cstdint>

namespace rcsim
{

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Simulated byte address. */
using Addr = std::uint32_t;

/** Integer register / ALU word (the RCM ISA is a 32-bit machine). */
using Word = std::int32_t;
using UWord = std::uint32_t;

/** Floating-point register word (double precision pairs, Section 5.2). */
using FpWord = double;

/** Dynamic execution counts (profile weights, instruction counts). */
using Count = std::uint64_t;

} // namespace rcsim

#endif // RCSIM_SUPPORT_TYPES_HH
