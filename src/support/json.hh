/**
 * @file
 * Tiny JSON emission helpers shared by every deterministic report
 * writer (campaign JSON, sweep JSON, the run journal).  Emission
 * only — rcsim renders JSON by concatenation so identical inputs
 * produce byte-identical documents; parsing stays with the
 * special-purpose readers (tools/tracecheck, harness/journal).
 */

#ifndef RCSIM_SUPPORT_JSON_HH
#define RCSIM_SUPPORT_JSON_HH

#include <string>

namespace rcsim::json
{

/** Escape a string for inclusion in a JSON string literal. */
std::string escape(const std::string &s);

/** Quote + escape: the rendered JSON string literal. */
std::string str(const std::string &s);

/** Inverse of escape() for the journal reader; best-effort. */
std::string unescape(const std::string &s);

} // namespace rcsim::json

#endif // RCSIM_SUPPORT_JSON_HH
