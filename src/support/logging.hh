/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  - internal invariant violated; a bug in rcsim itself.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments).
 * warn()   - something is modelled approximately; results may be
 *            affected but execution continues.
 * inform() - plain status output.
 */

#ifndef RCSIM_SUPPORT_LOGGING_HH
#define RCSIM_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rcsim
{

/** Exception thrown by panic(); carries the formatted message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace logging_detail
{

void emit(const char *level, const std::string &msg);

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    format(os, rest...);
}

template <typename... Args>
std::string
join(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace logging_detail

/**
 * Abort with a message: an rcsim-internal invariant was violated.
 * Throws PanicError so tests can observe it.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = logging_detail::join(args...);
    logging_detail::emit("panic", msg);
    throw PanicError(msg);
}

/**
 * Abort with a message: the user asked for something unsupported.
 * Throws FatalError so tests can observe it.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = logging_detail::join(args...);
    logging_detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Warn about approximate or suspicious behaviour; keeps running. */
template <typename... Args>
void
warn(const Args &...args)
{
    logging_detail::emit("warn", logging_detail::join(args...));
}

/** Plain status output. */
template <typename... Args>
void
inform(const Args &...args)
{
    logging_detail::emit("info", logging_detail::join(args...));
}

/** Globally silence warn()/inform() (used by benches). */
void setQuiet(bool quiet);
bool isQuiet();

/**
 * RAII: additionally silence the panic()/fatal() message emission
 * while in scope.  The exceptions still propagate — this only stops
 * the stderr print.  Used by fault-injection campaigns, where model
 * assertions tripping over injected corruption are the expected
 * "detected" outcome, not noise-worthy failures.  Nestable.
 */
class ScopedQuietErrors
{
  public:
    ScopedQuietErrors();
    ~ScopedQuietErrors();
    ScopedQuietErrors(const ScopedQuietErrors &) = delete;
    ScopedQuietErrors &operator=(const ScopedQuietErrors &) = delete;
};

} // namespace rcsim

#endif // RCSIM_SUPPORT_LOGGING_HH
