#include "support/error.hh"

#include <new>

#include "support/logging.hh"

namespace rcsim
{

const char *
toString(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::Transient:
        return "transient";
      case ErrorCategory::Hang:
        return "hang";
      case ErrorCategory::Corrupt:
        return "corrupt";
      case ErrorCategory::Resource:
        return "resource";
    }
    return "unknown";
}

std::string
RcError::describe() const
{
    std::string out = toString(category_);
    out += ": ";
    out += what();
    if (!context_.empty()) {
        out += " (";
        for (std::size_t i = 0; i < context_.size(); ++i) {
            if (i)
                out += "; ";
            out += "while ";
            out += context_[i];
        }
        out += ")";
    }
    return out;
}

ErrorCategory
classifyException(const std::exception &e)
{
    if (auto *rc = dynamic_cast<const RcError *>(&e))
        return rc->category();
    if (dynamic_cast<const PanicError *>(&e))
        return ErrorCategory::Corrupt;
    if (dynamic_cast<const FatalError *>(&e))
        return ErrorCategory::Resource;
    if (dynamic_cast<const std::bad_alloc *>(&e))
        return ErrorCategory::Resource;
    return ErrorCategory::Corrupt;
}

} // namespace rcsim
