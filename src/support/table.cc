#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rcsim
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

} // namespace rcsim
