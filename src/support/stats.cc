#include "support/stats.hh"

#include <sstream>

#include "support/logging.hh"

namespace rcsim
{

std::string
StatGroup::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean: non-positive value ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace rcsim
