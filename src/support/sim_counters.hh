/**
 * @file
 * Dense, enum-indexed event counters for the simulator's hot loop.
 *
 * The simulator used to account every event through a string-keyed
 * StatGroup (a `std::map<std::string, Count>` lookup — and for the
 * per-cycle issue histogram a freshly allocated key — on every
 * simulated cycle).  SimCounterArray replaces that with a plain array
 * indexed by the SimCounter enum plus a fixed-size issued-width
 * histogram, so counting an event is one add into a cache-resident
 * slot.  The string-keyed view every consumer expects is materialized
 * exactly once, in Simulator::result(), via exportTo(): counter names
 * and values are identical to the historical StatGroup contents (a
 * name appears iff its count is non-zero, matching the old
 * touch-on-add behaviour).
 */

#ifndef RCSIM_SUPPORT_SIM_COUNTERS_HH
#define RCSIM_SUPPORT_SIM_COUNTERS_HH

#include <cstring>

#include "support/stats.hh"
#include "support/types.hh"

namespace rcsim
{

/** Every named event the simulator counts on its hot path. */
enum class SimCounter : unsigned
{
    Traps,
    CyclesRedirect,
    CyclesStalled,
    StallMapUpdate,
    StallSrc,
    StallDestBusy,
    StallMemChannel,
    TakenBranches,
    Mispredicts,
    Loads,
    Stores,
    Calls,
    Connects,
    NumCounters, // sentinel
};

/** The stat name a counter exports as (identical to the old keys). */
const char *toString(SimCounter c);

/** Fixed-size counter array plus the issued-width histogram. */
class SimCounterArray
{
  public:
    /** Largest modelled issue width (MachineModel: 1-8). */
    static constexpr int maxIssueWidth = 8;

    void
    clear()
    {
        std::memset(counts_, 0, sizeof counts_);
        std::memset(issued_, 0, sizeof issued_);
    }

    void
    add(SimCounter c, Count delta = 1)
    {
        counts_[static_cast<unsigned>(c)] += delta;
    }

    Count
    get(SimCounter c) const
    {
        return counts_[static_cast<unsigned>(c)];
    }

    /** Count one issue cycle that issued @p n instructions. */
    void
    addIssued(int n)
    {
        ++issued_[n];
    }

    Count
    issued(int n) const
    {
        return issued_[n];
    }

    /**
     * Materialize into the string-keyed StatGroup: every non-zero
     * counter under its toString() name, every non-zero histogram
     * bucket as "issued_<n>".
     */
    void exportTo(StatGroup &group) const;

  private:
    Count counts_[static_cast<unsigned>(SimCounter::NumCounters)] = {};
    Count issued_[maxIssueWidth + 1] = {};
};

} // namespace rcsim

#endif // RCSIM_SUPPORT_SIM_COUNTERS_HH
