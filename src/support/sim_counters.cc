#include "support/sim_counters.hh"

#include <cstdio>

namespace rcsim
{

const char *
toString(SimCounter c)
{
    switch (c) {
      case SimCounter::Traps:
        return "traps";
      case SimCounter::CyclesRedirect:
        return "cycles_redirect";
      case SimCounter::CyclesStalled:
        return "cycles_stalled";
      case SimCounter::StallMapUpdate:
        return "stall_map_update";
      case SimCounter::StallSrc:
        return "stall_src";
      case SimCounter::StallDestBusy:
        return "stall_dest_busy";
      case SimCounter::StallMemChannel:
        return "stall_mem_channel";
      case SimCounter::TakenBranches:
        return "taken_branches";
      case SimCounter::Mispredicts:
        return "mispredicts";
      case SimCounter::Loads:
        return "loads";
      case SimCounter::Stores:
        return "stores";
      case SimCounter::Calls:
        return "calls";
      case SimCounter::Connects:
        return "connects";
      case SimCounter::NumCounters:
        break;
    }
    return "unknown";
}

void
SimCounterArray::exportTo(StatGroup &group) const
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(SimCounter::NumCounters); ++i)
        if (counts_[i])
            group.set(toString(static_cast<SimCounter>(i)),
                      counts_[i]);
    char name[sizeof "issued_" + 8];
    for (int n = 0; n <= maxIssueWidth; ++n)
        if (issued_[n]) {
            std::snprintf(name, sizeof name, "issued_%d", n);
            group.set(name, issued_[n]);
        }
}

} // namespace rcsim
