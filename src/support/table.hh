/**
 * @file
 * Fixed-width text table writer used by the experiment harness to print
 * paper-style result rows.
 */

#ifndef RCSIM_SUPPORT_TABLE_HH
#define RCSIM_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace rcsim
{

/** Accumulates rows of cells and renders them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render the table with a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rcsim

#endif // RCSIM_SUPPORT_TABLE_HH
