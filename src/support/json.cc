#include "support/json.hh"

#include <cstdio>
#include <cstdlib>

namespace rcsim::json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
str(const std::string &s)
{
    return "\"" + escape(s) + "\"";
}

std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        char c = s[++i];
        switch (c) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            if (i + 4 < s.size()) {
                out += static_cast<char>(
                    std::strtol(s.substr(i + 1, 4).c_str(), nullptr,
                                16));
                i += 4;
            }
            break;
          default:
            out += c; // covers \" and \\ (and passes others through)
        }
    }
    return out;
}

} // namespace rcsim::json
