/**
 * @file
 * Small statistics helpers used by the simulator and the experiment
 * harness: named scalar counters and geometric means.
 */

#ifndef RCSIM_SUPPORT_STATS_HH
#define RCSIM_SUPPORT_STATS_HH

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "support/types.hh"

namespace rcsim
{

/** A named bag of scalar counters with formatted dumping. */
class StatGroup
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void
    add(const std::string &name, Count delta = 1)
    {
        counters_[name] += delta;
    }

    /** Read a counter; missing counters read as zero. */
    Count
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    void
    set(const std::string &name, Count value)
    {
        counters_[name] = value;
    }

    void clear() { counters_.clear(); }

    const std::map<std::string, Count> &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string format() const;

  private:
    std::map<std::string, Count> counters_;
};

/**
 * Geometric mean of a series of positive values.  The paper-style
 * summary statistic for per-benchmark speedups.
 *
 * @return 0.0 for an empty series.
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0.0 for an empty series. */
double mean(const std::vector<double> &values);

} // namespace rcsim

#endif // RCSIM_SUPPORT_STATS_HH
