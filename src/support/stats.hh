/**
 * @file
 * Small statistics helpers used by the simulator and the experiment
 * harness: named scalar counters and geometric means.
 */

#ifndef RCSIM_SUPPORT_STATS_HH
#define RCSIM_SUPPORT_STATS_HH

#include <cmath>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/types.hh"

namespace rcsim
{

/**
 * A named bag of scalar counters with formatted dumping.
 *
 * Lookups are heterogeneous (std::less<> + std::string_view), so
 * get("literal") and add(sv) never construct a temporary std::string;
 * an allocation happens only when a new counter is first created.
 */
class StatGroup
{
  public:
    using Map = std::map<std::string, Count, std::less<>>;

    /** Add delta to the named counter (creating it at zero). */
    void
    add(std::string_view name, Count delta = 1)
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            counters_.emplace(name, delta);
        else
            it->second += delta;
    }

    /** Read a counter; missing counters read as zero. */
    Count
    get(std::string_view name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    void
    set(std::string_view name, Count value)
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            counters_.emplace(name, value);
        else
            it->second = value;
    }

    void clear() { counters_.clear(); }

    const Map &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string format() const;

  private:
    Map counters_;
};

/**
 * Geometric mean of a series of positive values.  The paper-style
 * summary statistic for per-benchmark speedups.
 *
 * @return 0.0 for an empty series.
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0.0 for an empty series. */
double mean(const std::vector<double> &values);

} // namespace rcsim

#endif // RCSIM_SUPPORT_STATS_HH
