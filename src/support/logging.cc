#include "support/logging.hh"

#include <atomic>
#include <cstdio>

namespace rcsim
{

namespace
{
// Atomic so ScopedQuietErrors can be used from worker threads of a
// parallel sweep (harness/sweep.hh) without a data race.
std::atomic<bool> quietFlag{false};
std::atomic<int> quietErrorDepth{0};
}

ScopedQuietErrors::ScopedQuietErrors()
{
    ++quietErrorDepth;
}

ScopedQuietErrors::~ScopedQuietErrors()
{
    --quietErrorDepth;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace logging_detail
{

void
emit(const char *level, const std::string &msg)
{
    bool is_error =
        std::string(level) == "panic" || std::string(level) == "fatal";
    if (is_error ? quietErrorDepth > 0 : quietFlag.load())
        return;
    std::fprintf(stderr, "rcsim: %s: %s\n", level, msg.c_str());
}

} // namespace logging_detail

} // namespace rcsim
