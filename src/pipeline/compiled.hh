/**
 * @file
 * The compilation pipeline's input and output value types.
 *
 * CompileOptions splits naturally along the frontend / backend seam:
 * `level` and `ilp` select the configuration-independent frontend
 * (what the FrontendCache keys on), while `rc` and `machine` only
 * affect the per-configuration backend.
 */

#ifndef RCSIM_PIPELINE_COMPILED_HH
#define RCSIM_PIPELINE_COMPILED_HH

#include "core/rc_config.hh"
#include "isa/instruction.hh"
#include "opt/passes.hh"
#include "sched/machine_model.hh"

namespace rcsim::pipeline
{

/** Everything that defines one compiled configuration. */
struct CompileOptions
{
    opt::OptLevel level = opt::OptLevel::Ilp;
    core::RcConfig rc = core::RcConfig::unlimited();
    sched::MachineModel machine;

    /** ILP transformation knobs (unroll factors etc.). */
    opt::IlpOptions ilp;
};

/** A compiled program plus verification and size metadata. */
struct CompiledProgram
{
    isa::Program program;

    /** Golden checksum from the IR interpreter. */
    Word golden = 0;

    /** Address of the __result word in simulated memory. */
    Addr resultAddr = 0;

    /** Static code size (non-nop instructions). */
    Count staticSize = 0;
    Count spillOps = 0;       // SpillLoad + SpillStore
    Count connectOps = 0;     // Connect
    Count saveRestoreOps = 0; // SaveRestore

    /** Allocation summary across functions. */
    int spilledRanges = 0;
    int extendedRanges = 0;
};

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_COMPILED_HH
