/**
 * @file
 * The configuration-independent compilation frontend and its memo
 * cache.
 *
 * Everything up to and including call lowering depends only on the
 * workload and the optimization knobs — not on the RC configuration
 * or the machine model a sweep varies.  runFrontend() packages that
 * prefix into an immutable FrontendResult; FrontendCache memoizes it
 * per (workload, level, ilp) so a configuration sweep pays the
 * frontend (two reference-interpreter profiling runs plus the
 * optimizer) exactly once, turning the dominant compile cost from
 * O(configs x frontend) into O(frontend + configs x backend).
 */

#ifndef RCSIM_PIPELINE_FRONTEND_HH
#define RCSIM_PIPELINE_FRONTEND_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>

#include "pipeline/pass.hh"

namespace rcsim::pipeline
{

/**
 * The frontend's output: an optimized, call-lowered module snapshot
 * plus the data the backend needs.  Treated as immutable once built —
 * the backend deep-clones `module` before mutating, and reads
 * `profile` only through const references — so one instance may be
 * shared by any number of concurrent backend runs.
 */
struct FrontendResult
{
    ir::Module module;  // optimized + lowered, layout done
    ir::Profile profile; // of the optimized program (profile2)
    Word golden = 0;     // reference-interpreter checksum
    Addr resultAddr = 0; // __result address after lowering

    /** Stage timings of the (cold) computation that produced this. */
    PassReport report;
};

/** The frontend pass sequence (build .. lower). */
const PassManager &frontendPasses();

/**
 * Run the frontend cold.  @p hooks is for tests (stage mutation /
 * verification override); cached compiles never see hooks.
 */
std::shared_ptr<const FrontendResult>
runFrontend(const workloads::Workload &workload, opt::OptLevel level,
            const opt::IlpOptions &ilp,
            const PassHooks *hooks = nullptr);

/** Identity of one memoized frontend computation. */
struct FrontendKey
{
    std::string workload;
    int level = 0;
    int maxUnroll = 0;
    int maxBodyOps = 0;
    Count minWeight = 0;

    bool operator<(const FrontendKey &o) const;

    static FrontendKey make(const workloads::Workload &workload,
                            opt::OptLevel level,
                            const opt::IlpOptions &ilp);
};

/**
 * Thread-safe frontend memo cache.
 *
 * Concurrency contract: the first thread to miss on a key computes
 * the frontend outside the lock; every concurrent requester of the
 * same key blocks on the shared future instead of duplicating the
 * two 500M-step profiling runs.  A computation that throws is erased
 * so a later call retries.  Frontends are deterministic, so a cached
 * result is bit-identical to what a cold run would produce.
 */
class FrontendCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;   // served from the cache
        std::uint64_t misses = 0; // frontend computations started
        std::size_t entries = 0;
    };

    /**
     * Fetch or compute the frontend for a configuration.
     * @p computed, when non-null, reports whether this call ran the
     * computation (false = cache hit or waited on another thread's).
     */
    std::shared_ptr<const FrontendResult>
    get(const workloads::Workload &workload, opt::OptLevel level,
        const opt::IlpOptions &ilp, bool *computed = nullptr);

    /** Drop every entry (tests / benchmarks). */
    void clear();

    Stats stats() const;

  private:
    using Future =
        std::shared_future<std::shared_ptr<const FrontendResult>>;

    mutable std::mutex mutex_;
    std::map<FrontendKey, Future> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/**
 * The process-wide cache shared by harness::Experiment, runSweep
 * workers, the fault-campaign runner, the figure benches and
 * tools/rcc (everything that compiles through
 * harness::compileWorkload / pipeline::compile).
 */
FrontendCache &frontendCache();

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_FRONTEND_HH
