#include "pipeline/reference.hh"

#include "codegen/codegen.hh"
#include "ir/interp.hh"
#include "ir/transform.hh"
#include "ir/verify.hh"
#include "opt/passes.hh"
#include "regalloc/connect.hh"
#include "regalloc/rewrite.hh"
#include "sched/scheduler.hh"
#include "support/logging.hh"

namespace rcsim::pipeline
{

CompiledProgram
compileReference(const workloads::Workload &workload,
                 const CompileOptions &opts)
{
    // 1. Build and wrap.
    ir::Module module = workload.build();
    codegen::addStartWrapper(module);
    module.layout();
    ir::verifyOrDie(module, "after workload construction");

    // 2. Profile the original program and record the golden result.
    Addr result_addr = 0;
    for (const ir::Global &g : module.globals)
        if (g.name == "__result")
            result_addr = g.address;
    if (result_addr == 0)
        panic("missing __result global");

    ir::Profile profile1 = ir::Profile::forModule(module);
    ir::Interpreter interp1(module);
    ir::ExecResult ref = interp1.run(500'000'000, &profile1);
    if (!ref.ok)
        panic("reference interpretation of '", workload.name,
              "' failed: ", ref.error);
    Word golden = interp1.loadWord(result_addr);

    // 3. Optimize, then re-profile the transformed program so
    // allocation priorities and branch predictions match it.
    opt::runOptimizations(module, opts.level, profile1, opts.ilp);
    ir::Profile profile2 = ir::Profile::forModule(module);
    ir::Interpreter interp2(module);
    ir::ExecResult ref2 = interp2.run(500'000'000, &profile2);
    if (!ref2.ok)
        panic("optimized interpretation of '", workload.name,
              "' failed: ", ref2.error);
    if (interp2.loadWord(result_addr) != golden)
        panic("optimization changed the result of '", workload.name,
              "'");
    opt::annotatePredictions(module, profile2);

    // 4. Lower calls and constants to machine form.
    codegen::lowerModule(module);
    for (const ir::Global &g : module.globals)
        if (g.name == "__result")
            result_addr = g.address;

    // 5. Back end, per function.
    CompiledProgram out;
    for (ir::Function &fn : module.functions) {
        sched::scheduleFunction(fn, opts.machine);
        regalloc::FunctionAlloc alloc = regalloc::allocateFunction(
            fn, fn.index, profile2, opts.rc);
        regalloc::rewriteFunction(fn, alloc, opts.rc);
        codegen::finalizeFrames(fn, alloc);
        sched::scheduleFunction(fn, opts.machine);
        if (opts.rc.enabled)
            regalloc::insertConnects(fn, fn.index, opts.rc,
                                     &profile2);
        out.spilledRanges += alloc.numSpilled;
        out.extendedRanges += alloc.numExtended;
    }

    out.program = codegen::emitProgram(module);
    out.golden = golden;
    out.resultAddr = result_addr;
    out.staticSize = out.program.staticSize();
    out.spillOps =
        out.program.countByOrigin(isa::InstrOrigin::SpillLoad) +
        out.program.countByOrigin(isa::InstrOrigin::SpillStore);
    out.connectOps =
        out.program.countByOrigin(isa::InstrOrigin::Connect);
    out.saveRestoreOps =
        out.program.countByOrigin(isa::InstrOrigin::SaveRestore);
    return out;
}

namespace
{

bool
pairsIdentical(const isa::ConnectPair &a, const isa::ConnectPair &b)
{
    return a.mapIdx == b.mapIdx && a.phys == b.phys &&
           a.isDef == b.isDef;
}

bool
instructionsIdentical(const isa::Instruction &a,
                      const isa::Instruction &b)
{
    return a.op == b.op && a.dst == b.dst && a.src[0] == b.src[0] &&
           a.src[1] == b.src[1] && a.imm == b.imm &&
           a.target == b.target &&
           pairsIdentical(a.conn[0], b.conn[0]) &&
           pairsIdentical(a.conn[1], b.conn[1]) &&
           a.nconn == b.nconn && a.connCls == b.connCls &&
           a.predictTaken == b.predictTaken && a.origin == b.origin;
}

} // namespace

bool
programsIdentical(const isa::Program &a, const isa::Program &b)
{
    if (a.entry != b.entry || a.dataBase != b.dataBase ||
        a.memorySize != b.memorySize || a.dataImage != b.dataImage)
        return false;
    if (a.functions.size() != b.functions.size())
        return false;
    for (std::size_t i = 0; i < a.functions.size(); ++i)
        if (a.functions[i].name != b.functions[i].name ||
            a.functions[i].entry != b.functions[i].entry ||
            a.functions[i].end != b.functions[i].end)
            return false;
    if (a.code.size() != b.code.size())
        return false;
    for (std::size_t i = 0; i < a.code.size(); ++i)
        if (!instructionsIdentical(a.code[i], b.code[i]))
            return false;
    return true;
}

bool
compiledIdentical(const CompiledProgram &a, const CompiledProgram &b)
{
    return a.golden == b.golden && a.resultAddr == b.resultAddr &&
           a.staticSize == b.staticSize &&
           a.spillOps == b.spillOps &&
           a.connectOps == b.connectOps &&
           a.saveRestoreOps == b.saveRestoreOps &&
           a.spilledRanges == b.spilledRanges &&
           a.extendedRanges == b.extendedRanges &&
           programsIdentical(a.program, b.program);
}

} // namespace rcsim::pipeline
