#include "pipeline/frontend.hh"

#include <tuple>
#include <utility>

#include "codegen/codegen.hh"
#include "ir/verify.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rcsim::pipeline
{

namespace
{

/** Interpreter step budget for the profiling runs (seed value). */
constexpr Count profileMaxOps = 500'000'000;

Addr
findResultAddr(const ir::Module &module)
{
    for (const ir::Global &g : module.globals)
        if (g.name == "__result")
            return g.address;
    return 0;
}

PassManager
buildFrontendPasses()
{
    PassManager pm("frontend", /*frontend=*/true);

    pm.add("build", VerifyMode::Full, [](PassContext &ctx) {
        ctx.module = ctx.workload->build();
    });

    pm.add("wrap", VerifyMode::Full, [](PassContext &ctx) {
        codegen::addStartWrapper(ctx.module);
        ctx.module.layout();
        // The seed pipeline's one unconditional check; kept
        // regardless of RCSIM_VERIFY_IR.
        ir::verifyOrDie(ctx.module, "after workload construction");
    });

    pm.add("profile", VerifyMode::Off, [](PassContext &ctx) {
        ctx.resultAddr = findResultAddr(ctx.module);
        if (ctx.resultAddr == 0)
            panic("missing __result global");
        ctx.profile1 = ir::Profile::forModule(ctx.module);
        ir::Interpreter interp(ctx.module);
        ir::ExecResult ref =
            interp.run(profileMaxOps, &ctx.profile1);
        if (!ref.ok)
            panic("reference interpretation of '",
                  ctx.workload->name, "' failed: ", ref.error);
        ctx.golden = interp.loadWord(ctx.resultAddr);
    });

    pm.add("optimize", VerifyMode::Full, [](PassContext &ctx) {
        opt::runOptimizations(ctx.module, ctx.level, ctx.profile1,
                              ctx.ilp);
    });

    // Re-profile the transformed program so allocation priorities
    // and branch predictions match it.
    pm.add("re-profile", VerifyMode::Off, [](PassContext &ctx) {
        ctx.profile2 = ir::Profile::forModule(ctx.module);
        ir::Interpreter interp(ctx.module);
        ir::ExecResult ref =
            interp.run(profileMaxOps, &ctx.profile2);
        if (!ref.ok)
            panic("optimized interpretation of '",
                  ctx.workload->name, "' failed: ", ref.error);
        if (interp.loadWord(ctx.resultAddr) != ctx.golden)
            panic("optimization changed the result of '",
                  ctx.workload->name, "'");
        opt::annotatePredictions(ctx.module, ctx.profile2);
    });

    pm.add("lower", VerifyMode::NoUndef, [](PassContext &ctx) {
        codegen::lowerModule(ctx.module);
        // Lowering lays out new globals (constant pool); re-find
        // the __result address.
        ctx.resultAddr = findResultAddr(ctx.module);
    });

    return pm;
}

} // namespace

const PassManager &
frontendPasses()
{
    static const PassManager pm = buildFrontendPasses();
    return pm;
}

std::shared_ptr<const FrontendResult>
runFrontend(const workloads::Workload &workload, opt::OptLevel level,
            const opt::IlpOptions &ilp, const PassHooks *hooks)
{
    PassContext ctx;
    ctx.workload = &workload;
    ctx.level = level;
    ctx.ilp = ilp;

    auto result = std::make_shared<FrontendResult>();
    frontendPasses().run(ctx, &result->report, hooks);

    result->module = std::move(ctx.module);
    result->profile = std::move(ctx.profile2);
    result->golden = ctx.golden;
    result->resultAddr = ctx.resultAddr;
    return result;
}

bool
FrontendKey::operator<(const FrontendKey &o) const
{
    return std::tie(workload, level, maxUnroll, maxBodyOps,
                    minWeight) <
           std::tie(o.workload, o.level, o.maxUnroll, o.maxBodyOps,
                    o.minWeight);
}

FrontendKey
FrontendKey::make(const workloads::Workload &workload,
                  opt::OptLevel level, const opt::IlpOptions &ilp)
{
    FrontendKey key;
    key.workload = workload.name;
    key.level = static_cast<int>(level);
    key.maxUnroll = ilp.maxUnroll;
    key.maxBodyOps = ilp.maxBodyOps;
    key.minWeight = ilp.minWeight;
    return key;
}

std::shared_ptr<const FrontendResult>
FrontendCache::get(const workloads::Workload &workload,
                   opt::OptLevel level, const opt::IlpOptions &ilp,
                   bool *computed)
{
    FrontendKey key = FrontendKey::make(workload, level, ilp);

    Future future;
    std::promise<std::shared_ptr<const FrontendResult>> promise;
    bool creator = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            future = it->second;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            future = promise.get_future().share();
            entries_.emplace(key, future);
            creator = true;
        }
    }
    if (computed)
        *computed = creator;
    if (trace::on())
        trace::instant(creator ? "frontend.miss" : "frontend.hit",
                       "compile");

    if (creator) {
        try {
            promise.set_value(runFrontend(workload, level, ilp));
        } catch (...) {
            // Don't cache failures: erase so a later call retries;
            // current waiters still observe the exception through
            // their copy of the future.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
FrontendCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

FrontendCache::Stats
FrontendCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    s.entries = entries_.size();
    return s;
}

FrontendCache &
frontendCache()
{
    static FrontendCache cache;
    return cache;
}

} // namespace rcsim::pipeline
