/**
 * @file
 * The staged compile entry point: memoized frontend + per-config
 * backend.  harness::compileWorkload forwards here, so every caller
 * in the tree (Experiment, runSweep workers, fault campaigns, the
 * figure benches, tools/rcc) shares the frontend cache.
 */

#ifndef RCSIM_PIPELINE_COMPILE_HH
#define RCSIM_PIPELINE_COMPILE_HH

#include "pipeline/backend.hh"

namespace rcsim::pipeline
{

/**
 * Compile one workload configuration through the staged pipeline.
 *
 * The frontend comes from the process-wide FrontendCache when
 * @p use_cache is true (hooks force a cold, uncached frontend so
 * test mutations never poison shared state).  @p report, when
 * non-null, receives one row per stage — frontend rows are flagged
 * `cached` on a cache hit, with the cold run's timings replayed.
 */
CompiledProgram compile(const workloads::Workload &workload,
                        const CompileOptions &opts,
                        PassReport *report = nullptr,
                        const PassHooks *hooks = nullptr,
                        bool use_cache = true);

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_COMPILE_HH
