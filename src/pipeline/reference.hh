/**
 * @file
 * The seed monolithic pipeline, frozen as an equivalence oracle.
 *
 * compileReference() is a verbatim preservation of the pre-staging
 * harness::compileWorkload: one straight-line function, no caching,
 * no instrumentation, function-major backend order.  The
 * golden-equivalence tests (tests/test_pipeline.cc) and the compile
 * throughput bench compare the staged pipeline against it
 * instruction-by-instruction; any divergence is a bug in the staged
 * path.  Do not "improve" this file — its value is that it does not
 * change.
 */

#ifndef RCSIM_PIPELINE_REFERENCE_HH
#define RCSIM_PIPELINE_REFERENCE_HH

#include "pipeline/compiled.hh"
#include "workloads/workloads.hh"

namespace rcsim::pipeline
{

/** Run the frozen seed pipeline on one workload. */
CompiledProgram
compileReference(const workloads::Workload &workload,
                 const CompileOptions &opts);

/** Field-by-field machine-program equality (every instruction). */
bool programsIdentical(const isa::Program &a, const isa::Program &b);

/** programsIdentical() plus all CompiledProgram metadata. */
bool compiledIdentical(const CompiledProgram &a,
                       const CompiledProgram &b);

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_REFERENCE_HH
