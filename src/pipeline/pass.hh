/**
 * @file
 * The pass manager: named compilation stages with a uniform
 * interface, per-stage wall-clock timing and op-delta counters, and
 * optional inter-stage IR verification.
 *
 * The compile path is two PassManager sequences over one PassContext:
 *
 *   frontend (config-independent): build -> wrap -> profile ->
 *       optimize -> re-profile -> lower
 *   backend (per RC/machine configuration): prepass-schedule ->
 *       allocate -> rewrite -> frames -> schedule -> connect -> emit
 *
 * Inter-stage verification runs ir::verifyOrDie after every pass that
 * declares a verifiable output; it is controlled by the
 * RCSIM_VERIFY_IR environment variable ("1"/"0"), defaults on in
 * debug builds (or with -DRCSIM_VERIFY_IR=ON), and can be forced per
 * run through PassHooks::verifyOverride.
 */

#ifndef RCSIM_PIPELINE_PASS_HH
#define RCSIM_PIPELINE_PASS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "ir/interp.hh"
#include "pipeline/compiled.hh"
#include "regalloc/allocation.hh"
#include "workloads/workloads.hh"

namespace rcsim::pipeline
{

/** What ir::verifyOrDie can check after a pass. */
enum class VerifyMode : std::uint8_t
{
    Off,     // output is not verifiable IR (or the module unchanged)
    NoUndef, // structure + classes only (lowered / physical form)
    Full,    // including the definite-assignment analysis
};

/** Timing and size instrumentation for one executed stage. */
struct StageStats
{
    std::string name;
    double seconds = 0.0;
    Count opsBefore = 0;
    Count opsAfter = 0;
    bool frontend = false; // stage belongs to the frontend sequence
    bool cached = false;   // replayed from the frontend memo cache

    long long
    opDelta() const
    {
        return static_cast<long long>(opsAfter) -
               static_cast<long long>(opsBefore);
    }
};

/** Per-compile report: one row per executed (or replayed) stage. */
struct PassReport
{
    std::vector<StageStats> stages;

    /** The frontend came from the memo cache (stages replayed). */
    bool frontendCached = false;

    double totalSeconds() const;
    double frontendSeconds() const;
    double backendSeconds() const;

    /** Aligned per-stage table (rcc --timings). */
    std::string formatTable() const;
};

/**
 * Shared state threaded through the passes.  The frontend fills the
 * module / profiles / golden fields; the backend consumes them
 * (module deep-cloned from the cached FrontendResult) and fills
 * `out`.
 */
struct PassContext
{
    const workloads::Workload *workload = nullptr;

    // Frontend inputs (cache key).
    opt::OptLevel level = opt::OptLevel::Ilp;
    opt::IlpOptions ilp;

    // Backend inputs.
    core::RcConfig rc;
    sched::MachineModel machine;

    // Evolving state.
    ir::Module module;
    ir::Profile profile1; // of the unoptimized program
    ir::Profile profile2; // of the optimized program
    Word golden = 0;
    Addr resultAddr = 0;

    /** Per-function allocations (allocate -> rewrite -> frames). */
    std::vector<regalloc::FunctionAlloc> allocs;

    CompiledProgram out;
};

/**
 * Test / instrumentation hooks for one PassManager::run.
 */
struct PassHooks
{
    /**
     * Called after each pass body, before that stage's verification
     * — a mutation here is attributed to the stage it follows, which
     * is what the corrupted-module tests rely on.
     */
    std::function<void(const std::string &stage, PassContext &ctx)>
        afterStage;

    /** -1 = use RCSIM_VERIFY_IR / build default, 0 = off, 1 = on. */
    int verifyOverride = -1;
};

/** One named stage of the compilation pipeline. */
class Pass
{
  public:
    using Body = std::function<void(PassContext &)>;

    Pass(std::string name, VerifyMode verify, Body body)
        : name_(std::move(name)), verify_(verify),
          body_(std::move(body))
    {
    }

    const std::string &name() const { return name_; }
    VerifyMode verifyMode() const { return verify_; }
    void run(PassContext &ctx) const { body_(ctx); }

  private:
    std::string name_;
    VerifyMode verify_;
    Body body_;
};

/**
 * An ordered, named pass sequence.  run() executes every pass in
 * order, timing each, recording module op counts before and after,
 * and verifying the IR at stage boundaries when enabled.
 */
class PassManager
{
  public:
    explicit PassManager(std::string label, bool frontend)
        : label_(std::move(label)), frontend_(frontend)
    {
    }

    void
    add(std::string name, VerifyMode verify, Pass::Body body)
    {
        passes_.emplace_back(std::move(name), verify,
                             std::move(body));
    }

    /**
     * Run all passes over @p ctx.  Stage rows are appended to
     * @p report when non-null; @p hooks may be null.
     */
    void run(PassContext &ctx, PassReport *report,
             const PassHooks *hooks) const;

    std::vector<std::string> passNames() const;
    const std::string &label() const { return label_; }

  private:
    std::string label_;
    bool frontend_;
    std::vector<Pass> passes_;
};

/**
 * Whether inter-stage IR verification is on: the RCSIM_VERIFY_IR
 * environment variable when set ("1"/"0"), otherwise the build
 * default (on for debug / -DRCSIM_VERIFY_IR=ON builds).  Read on
 * every query so tests can flip the environment.
 */
bool verifyIrEnabled();

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_PASS_HH
