/**
 * @file
 * The configuration-dependent compilation backend.
 *
 * Deep-clones the frontend's module snapshot and runs the
 * RC/machine-dependent stages (prepass-schedule, allocate, rewrite,
 * frames, schedule, connect, emit).  Stage order is stage-major
 * (every function through one stage before the next stage starts);
 * each stage is per-function independent, so the emitted program is
 * bit-identical to the seed pipeline's function-major loop — the
 * golden-equivalence tests pin this.
 */

#ifndef RCSIM_PIPELINE_BACKEND_HH
#define RCSIM_PIPELINE_BACKEND_HH

#include "pipeline/frontend.hh"

namespace rcsim::pipeline
{

/** The backend pass sequence (prepass-schedule .. emit). */
const PassManager &backendPasses();

/**
 * Compile one configuration from a (possibly shared) frontend
 * result.  Only `rc`, `machine` (and transitively nothing else) of
 * @p opts are consumed here; `level` / `ilp` already shaped
 * @p frontend.
 */
CompiledProgram runBackend(const FrontendResult &frontend,
                           const CompileOptions &opts,
                           PassReport *report = nullptr,
                           const PassHooks *hooks = nullptr);

} // namespace rcsim::pipeline

#endif // RCSIM_PIPELINE_BACKEND_HH
