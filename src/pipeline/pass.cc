#include "pipeline/pass.hh"

#include <chrono>
#include <cstdlib>

#include "ir/verify.hh"
#include "support/table.hh"
#include "trace/trace.hh"

namespace rcsim::pipeline
{

double
PassReport::totalSeconds() const
{
    double s = 0.0;
    for (const StageStats &st : stages)
        if (!st.cached)
            s += st.seconds;
    return s;
}

double
PassReport::frontendSeconds() const
{
    double s = 0.0;
    for (const StageStats &st : stages)
        if (st.frontend && !st.cached)
            s += st.seconds;
    return s;
}

double
PassReport::backendSeconds() const
{
    double s = 0.0;
    for (const StageStats &st : stages)
        if (!st.frontend)
            s += st.seconds;
    return s;
}

std::string
PassReport::formatTable() const
{
    TextTable t;
    t.header({"stage", "ms", "ops-in", "ops-out", "delta", "note"});
    for (const StageStats &st : stages) {
        std::string note;
        if (st.cached)
            note = "cached";
        else if (st.frontend)
            note = "frontend";
        else
            note = "backend";
        t.row({st.name, TextTable::num(st.seconds * 1e3, 3),
               std::to_string(st.opsBefore),
               std::to_string(st.opsAfter),
               std::to_string(st.opDelta()), note});
    }
    char total[96];
    std::snprintf(total, sizeof total,
                  "total %.3f ms (frontend %.3f ms%s, backend "
                  "%.3f ms)\n",
                  totalSeconds() * 1e3, frontendSeconds() * 1e3,
                  frontendCached ? " cached" : "",
                  backendSeconds() * 1e3);
    return t.render() + total;
}

bool
verifyIrEnabled()
{
    if (const char *env = std::getenv("RCSIM_VERIFY_IR")) {
        if (env[0] != '\0')
            return env[0] != '0';
    }
#if defined(RCSIM_VERIFY_IR_DEFAULT)
    return true;
#elif !defined(NDEBUG)
    return true;
#else
    return false;
#endif
}

void
PassManager::run(PassContext &ctx, PassReport *report,
                 const PassHooks *hooks) const
{
    using Clock = std::chrono::steady_clock;

    bool verify = verifyIrEnabled();
    if (hooks && hooks->verifyOverride >= 0)
        verify = hooks->verifyOverride != 0;

    for (const Pass &pass : passes_) {
        StageStats st;
        st.name = pass.name();
        st.frontend = frontend_;
        st.opsBefore = ctx.module.opCount();

        trace::Span span("pass:" + pass.name(),
                         frontend_ ? "frontend" : "backend");
        Clock::time_point start = Clock::now();
        pass.run(ctx);
        if (hooks && hooks->afterStage)
            hooks->afterStage(pass.name(), ctx);
        if (verify && pass.verifyMode() != VerifyMode::Off)
            ir::verifyOrDie(ctx.module,
                            "after pass '" + pass.name() + "'",
                            pass.verifyMode() == VerifyMode::Full);
        st.seconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();

        st.opsAfter = ctx.module.opCount();
        if (report)
            report->stages.push_back(std::move(st));
    }
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const Pass &pass : passes_)
        names.push_back(pass.name());
    return names;
}

} // namespace rcsim::pipeline
