#include "pipeline/backend.hh"

#include <cstdlib>

#include "analysis/analyzer.hh"
#include "codegen/codegen.hh"
#include "regalloc/connect.hh"
#include "regalloc/rewrite.hh"
#include "sched/scheduler.hh"
#include "support/error.hh"

namespace rcsim::pipeline
{

namespace
{

/**
 * Whether the post-emit map-state analyzer gate is on: RCSIM_ANALYZE
 * ("1"/"0"), default off — fuzz-generated programs compile through
 * this backend too and intentionally carry analyzer findings.  Read
 * per query like verifyIrEnabled(), so tests can toggle it.
 */
bool
analyzeEnabled()
{
    const char *env = std::getenv("RCSIM_ANALYZE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

PassManager
buildBackendPasses()
{
    PassManager pm("backend", /*frontend=*/false);

    // Prepass scheduling on virtual registers: overlapping the live
    // ranges of independent (renamed) operations is what raises the
    // simultaneous register pressure the paper studies; the
    // allocator then sees the interleaved ranges.
    pm.add("prepass-schedule", VerifyMode::NoUndef,
           [](PassContext &ctx) {
               for (ir::Function &fn : ctx.module.functions)
                   sched::scheduleFunction(fn, ctx.machine);
           });

    pm.add("allocate", VerifyMode::Off, [](PassContext &ctx) {
        ctx.allocs.clear();
        ctx.allocs.reserve(ctx.module.functions.size());
        for (ir::Function &fn : ctx.module.functions) {
            ctx.allocs.push_back(regalloc::allocateFunction(
                fn, fn.index, ctx.profile2, ctx.rc));
            ctx.out.spilledRanges += ctx.allocs.back().numSpilled;
            ctx.out.extendedRanges += ctx.allocs.back().numExtended;
        }
    });

    pm.add("rewrite", VerifyMode::NoUndef, [](PassContext &ctx) {
        for (ir::Function &fn : ctx.module.functions)
            regalloc::rewriteFunction(
                fn, ctx.allocs[static_cast<std::size_t>(fn.index)],
                ctx.rc);
    });

    pm.add("frames", VerifyMode::NoUndef, [](PassContext &ctx) {
        for (ir::Function &fn : ctx.module.functions)
            codegen::finalizeFrames(
                fn, ctx.allocs[static_cast<std::size_t>(fn.index)]);
    });

    pm.add("schedule", VerifyMode::NoUndef, [](PassContext &ctx) {
        for (ir::Function &fn : ctx.module.functions)
            sched::scheduleFunction(fn, ctx.machine);
    });

    pm.add("connect", VerifyMode::NoUndef, [](PassContext &ctx) {
        if (!ctx.rc.enabled)
            return;
        for (ir::Function &fn : ctx.module.functions)
            regalloc::insertConnects(fn, fn.index, ctx.rc,
                                     &ctx.profile2);
    });

    pm.add("emit", VerifyMode::Off, [](PassContext &ctx) {
        ctx.out.program = codegen::emitProgram(ctx.module);
        ctx.out.golden = ctx.golden;
        ctx.out.resultAddr = ctx.resultAddr;
        // One scan tallies every InstrOrigin (and the static size,
        // which is their sum).
        auto counts = ctx.out.program.countAllOrigins();
        ctx.out.staticSize = 0;
        for (Count c : counts)
            ctx.out.staticSize += c;
        auto of = [&](isa::InstrOrigin o) {
            return counts[static_cast<std::size_t>(o)];
        };
        ctx.out.spillOps = of(isa::InstrOrigin::SpillLoad) +
                           of(isa::InstrOrigin::SpillStore);
        ctx.out.connectOps = of(isa::InstrOrigin::Connect);
        ctx.out.saveRestoreOps =
            of(isa::InstrOrigin::SaveRestore);
    });

    // Post-emit verification: the whole-program map-state analyzer
    // (analysis/analyzer.hh) must find nothing in compiler output —
    // any diagnostic here is a backend bug (a stale or dead connect
    // the inserter emitted, an out-of-range operand the rewriter
    // produced).  Env-gated off by default: see analyzeEnabled().
    pm.add("analyze", VerifyMode::Off, [](PassContext &ctx) {
        if (!analyzeEnabled())
            return;
        analysis::AnalyzerOptions ao;
        ao.rc = ctx.rc;
        analysis::AnalysisResult res =
            analysis::analyzeProgram(ctx.out.program, ao);
        if (!res.clean())
            throw RcError(ErrorCategory::Corrupt,
                          "map-state analyzer found " +
                              std::to_string(res.diags.size()) +
                              " issue(s) in compiler output:\n" +
                              analysis::renderDiagnostics(res.diags))
                .addContext("backend analyze pass");
    });

    return pm;
}

} // namespace

const PassManager &
backendPasses()
{
    static const PassManager pm = buildBackendPasses();
    return pm;
}

CompiledProgram
runBackend(const FrontendResult &frontend,
           const CompileOptions &opts, PassReport *report,
           const PassHooks *hooks)
{
    PassContext ctx;
    ctx.level = opts.level;
    ctx.ilp = opts.ilp;
    ctx.rc = opts.rc;
    ctx.machine = opts.machine;
    ctx.module = frontend.module.clone();
    ctx.profile2 = frontend.profile;
    ctx.golden = frontend.golden;
    ctx.resultAddr = frontend.resultAddr;

    backendPasses().run(ctx, report, hooks);
    return std::move(ctx.out);
}

} // namespace rcsim::pipeline
