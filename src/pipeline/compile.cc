#include "pipeline/compile.hh"

namespace rcsim::pipeline
{

CompiledProgram
compile(const workloads::Workload &workload,
        const CompileOptions &opts, PassReport *report,
        const PassHooks *hooks, bool use_cache)
{
    std::shared_ptr<const FrontendResult> frontend;
    bool computed = true;
    if (use_cache && !hooks)
        frontend = frontendCache().get(workload, opts.level,
                                       opts.ilp, &computed);
    else
        frontend =
            runFrontend(workload, opts.level, opts.ilp, hooks);

    if (report) {
        report->frontendCached = !computed;
        for (StageStats st : frontend->report.stages) {
            st.cached = !computed;
            report->stages.push_back(std::move(st));
        }
    }
    return runBackend(*frontend, opts, report, hooks);
}

} // namespace rcsim::pipeline
