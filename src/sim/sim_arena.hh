/**
 * @file
 * Per-worker simulator arena: one reusable Simulator per sweep worker.
 *
 * A grid walk constructs a simulator per point, and construction is
 * dominated by allocation — the memory image alone is megabytes per
 * workload, plus register files, scoreboards and mapping tables.  An
 * arena keeps one Simulator alive across the points a worker runs and
 * retargets it with Simulator::rebind(), which re-shapes the state in
 * place: every std::vector involved is re-assign()ed to the new
 * configuration's size, so capacity (and the allocation) is reused
 * whenever the worker stays on similar configurations — exactly what
 * the executor's affinity sharding (harness/executor.hh) arranges.
 *
 * Bit-identity contract: rebind() ends in reset(), which reassigns
 * every mutable member, so a run from an arena-reused simulator is
 * bit-identical to one from a freshly constructed simulator (pinned
 * by tests/test_executor.cc).  RCSIM_ARENA=0 disables the reuse —
 * acquire() then constructs a fresh Simulator every time — as the
 * escape hatch for bisecting any suspected reuse bug.
 *
 * Lifetime contract: the returned simulator holds a pointer to the
 * bound program, so it may only be used while that program is alive.
 * The bound program is allowed to die *between* uses — the pooled
 * instance then holds a dangling binding, which is harmless because
 * acquire() rebinds (and resets) before handing the simulator out
 * again.  An arena is single-worker state: acquire() and the
 * returned simulator must not be used concurrently.
 */

#ifndef RCSIM_SIM_SIM_ARENA_HH
#define RCSIM_SIM_SIM_ARENA_HH

#include <cstdint>
#include <memory>

#include "sim/simulator.hh"

namespace rcsim::sim
{

/** One worker's reusable simulator slot. */
class SimArena
{
  public:
    /**
     * A simulator bound to (@p prog, @p cfg, @p predecoded): the
     * pooled instance rebound in place when reuse is enabled, a
     * fresh construction otherwise.  Valid until the next acquire().
     */
    Simulator &acquire(const isa::Program &prog, const SimConfig &cfg,
                       std::shared_ptr<const Predecoded> predecoded =
                           nullptr);

    /** Rebinds served (reuse hits); fresh constructions excluded. */
    std::uint64_t rebinds() const { return rebinds_; }

  private:
    std::unique_ptr<Simulator> sim_;
    std::uint64_t rebinds_ = 0;
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_SIM_ARENA_HH
