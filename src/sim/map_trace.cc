#include "sim/map_trace.hh"

#include <algorithm>

#include "sim/simulator.hh"

namespace rcsim::sim
{

std::string
MapViolation::toString() const
{
    // Built with append rather than one operator+ chain: GCC 12's
    // -Wrestrict false-positives on the chained temporary.
    std::string s = "c";
    s += std::to_string(cycle);
    s += " pc";
    s += std::to_string(check.pc);
    s += check.cls == isa::RegClass::Int ? " imap[" : " fmap[";
    s += std::to_string(check.idx);
    s += check.isWrite ? "].write" : "].read";
    s += ": claimed p";
    s += std::to_string(check.phys);
    if (!enableObserved)
        s += " but the map was disabled";
    else
        s += " observed p" + std::to_string(observed);
    return s;
}

MapTraceProbe::MapTraceProbe(std::vector<MapCheck> checks,
                             std::size_t code_size)
    : checks_(std::move(checks))
{
    std::erase_if(checks_, [&](const MapCheck &c) {
        return c.pc < 0 ||
               c.pc >= static_cast<std::int32_t>(code_size);
    });
    std::stable_sort(checks_.begin(), checks_.end(),
                     [](const MapCheck &a, const MapCheck &b) {
                         return a.pc < b.pc;
                     });
    off_.assign(code_size + 1, 0);
    for (const MapCheck &c : checks_)
        ++off_[static_cast<std::size_t>(c.pc) + 1];
    for (std::size_t i = 1; i < off_.size(); ++i)
        off_[i] += off_[i - 1];
    hit_.assign(checks_.size(), 0);
    flagged_.assign(checks_.size(), 0);
}

void
MapTraceProbe::onCycle(Simulator &sim, Cycle cycle)
{
    const MachineState &st = sim.state();
    std::int32_t pc = st.pc;
    if (pc < 0 || static_cast<std::size_t>(pc) + 1 >= off_.size())
        return;
    std::uint32_t lo = off_[static_cast<std::size_t>(pc)];
    std::uint32_t hi = off_[static_cast<std::size_t>(pc) + 1];
    if (lo == hi)
        return;
    bool enable = st.psw().mapEnable();
    for (std::uint32_t i = lo; i < hi; ++i) {
        const MapCheck &c = checks_[i];
        if (!hit_[i]) {
            hit_[i] = 1;
            ++checksHit_;
        }
        int observed = -1;
        if (enable) {
            const core::RegisterMappingTable &map = st.map(c.cls);
            if (c.idx < map.size())
                observed = c.isWrite ? map.writeMap(c.idx)
                                     : map.readMap(c.idx);
        }
        if (enable && observed == static_cast<int>(c.phys))
            continue;
        if (flagged_[i] || violations_.size() >= maxViolations)
            continue;
        flagged_[i] = 1;
        violations_.push_back(
            MapViolation{c, enable, observed, cycle});
    }
}

} // namespace rcsim::sim
