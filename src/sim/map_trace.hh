/**
 * @file
 * Dynamic map-state trace checking.
 *
 * MapTraceProbe validates statically-derived map claims ("when
 * code[pc] issues, map entry idx of class cls resolves reads/writes
 * to physical register phys") against the live machine.  It is the
 * dynamic half of the fuzz-bank cross-validation oracle
 * (fuzz/xval.hh): the static analyzer (analysis/analyzer.hh) proves a
 * resolution, this probe watches an actual run and records every
 * contradiction.
 *
 * The probe must run at issue width 1: onCycle() fires at each cycle
 * boundary before fetch, where MachineState::pc names the next
 * instruction to issue and the maps hold exactly the state that
 * instruction's operands will resolve through.  At wider issue the
 * pre-issue pc skips over instructions issued mid-group, so claims
 * would silently go unchecked.  The map-state *sequence* is issue-
 * width-invariant, so checking at width 1 validates the claim for
 * every width.
 */

#ifndef RCSIM_SIM_MAP_TRACE_HH
#define RCSIM_SIM_MAP_TRACE_HH

#include <string>
#include <vector>

#include "core/mapping_table.hh"
#include "isa/reg.hh"
#include "sim/probe.hh"

namespace rcsim::sim
{

/** One statically-claimed map resolution to check dynamically. */
struct MapCheck
{
    std::int32_t pc = 0;
    isa::RegClass cls = isa::RegClass::Int;
    std::uint16_t idx = 0;
    bool isWrite = false;
    core::PhysIndex phys = 0;
};

/** A dynamic observation contradicting a static claim. */
struct MapViolation
{
    MapCheck check;

    /** PSW map-enable bit observed at the claim point. */
    bool enableObserved = false;

    /** Observed resolution (-1 when the map was disabled). */
    int observed = -1;

    Cycle cycle = 0;

    /** One-line report for logs and repro payloads. */
    std::string toString() const;
};

class MapTraceProbe : public SimProbe
{
  public:
    /**
     * @param checks    claims to validate (any order)
     * @param code_size program length; claims with pc outside
     *                  [0, code_size) are ignored
     */
    MapTraceProbe(std::vector<MapCheck> checks,
                  std::size_t code_size);

    void onCycle(Simulator &sim, Cycle cycle) override;

    /** Distinct claims observed at least once. */
    Count checksHit() const { return checksHit_; }

    const std::vector<MapViolation> &violations() const
    {
        return violations_;
    }

  private:
    std::vector<MapCheck> checks_;   // sorted by pc
    std::vector<std::uint32_t> off_; // pc -> first check (CSR)
    std::vector<std::uint8_t> hit_;  // per check: observed once
    std::vector<std::uint8_t> flagged_; // per check: reported once
    std::vector<MapViolation> violations_;
    Count checksHit_ = 0;

    static constexpr std::size_t maxViolations = 64;
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_MAP_TRACE_HH
