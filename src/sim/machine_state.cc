#include "sim/machine_state.hh"

#include <cstring>

#include "support/logging.hh"

namespace rcsim::sim
{

MachineState::MachineState(const isa::Program &prog,
                           const SimConfig &cfg)
    : prog_(&prog), cfg_(&cfg),
      imap_(cfg.rc.core(isa::RegClass::Int),
            cfg.rc.total(isa::RegClass::Int), !cfg.rc.splitMaps),
      fmap_(cfg.rc.core(isa::RegClass::Fp),
            cfg.rc.total(isa::RegClass::Fp), !cfg.rc.splitMaps)
{
    reset();
}

void
MachineState::rebind(const isa::Program &prog, const SimConfig &cfg)
{
    prog_ = &prog;
    cfg_ = &cfg;
    imap_.reconfigure(cfg.rc.core(isa::RegClass::Int),
                      cfg.rc.total(isa::RegClass::Int),
                      !cfg.rc.splitMaps);
    fmap_.reconfigure(cfg.rc.core(isa::RegClass::Fp),
                      cfg.rc.total(isa::RegClass::Fp),
                      !cfg.rc.splitMaps);
}

void
MachineState::reset()
{
    iregs_.assign(cfg_->rc.total(isa::RegClass::Int), 0);
    fregs_.assign(cfg_->rc.total(isa::RegClass::Fp), 0.0);
    imap_.reset();
    fmap_.reset();
    psw_ = core::ProcessorStatusWord{};
    psw_.setExtendedFormat(cfg_->rc.enabled);

    memory_.assign(prog_->memorySize, 0);
    if (prog_->dataBase + prog_->dataImage.size() > memory_.size())
        fatal("program data image exceeds configured memory");
    std::memcpy(memory_.data() + prog_->dataBase,
                prog_->dataImage.data(), prog_->dataImage.size());

    pc = prog_->entry;
    epc = 0;
    epsw = psw_.bits;
    // The stack grows down from the top of memory.
    setSp(static_cast<Word>(memory_.size() - 16));
}

void
MachineState::resetMaps()
{
    imap_.reset();
    fmap_.reset();
}

ProcessContext
MachineState::saveContext() const
{
    ProcessContext ctx;
    ctx.psw = psw_;
    ctx.pc = pc;
    ctx.extended = psw_.extendedFormat();
    if (ctx.extended) {
        ctx.iregs = iregs_;
        ctx.fregs = fregs_;
        ctx.imap = imap_.save();
        ctx.fmap = fmap_.save();
    } else {
        ctx.iregs.assign(iregs_.begin(),
                         iregs_.begin() +
                             cfg_->rc.core(isa::RegClass::Int));
        ctx.fregs.assign(fregs_.begin(),
                         fregs_.begin() +
                             cfg_->rc.core(isa::RegClass::Fp));
    }
    return ctx;
}

void
MachineState::restoreContext(const ProcessContext &ctx)
{
    psw_ = ctx.psw;
    pc = ctx.pc;
    if (ctx.extended) {
        if (ctx.iregs.size() != iregs_.size() ||
            ctx.fregs.size() != fregs_.size())
            panic("extended context does not match register files");
        iregs_ = ctx.iregs;
        fregs_ = ctx.fregs;
        imap_.restore(ctx.imap);
        fmap_.restore(ctx.fmap);
    } else {
        // Original-format context: restore the core sections and make
        // sure the maps are at their home locations, which is all a
        // base-architecture program can observe (Section 4.2).
        std::copy(ctx.iregs.begin(), ctx.iregs.end(),
                  iregs_.begin());
        std::copy(ctx.fregs.begin(), ctx.fregs.end(),
                  fregs_.begin());
        imap_.reset();
        fmap_.reset();
    }
}

} // namespace rcsim::sim
