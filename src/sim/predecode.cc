#include "sim/predecode.hh"

#include "isa/opcode.hh"

namespace rcsim::sim
{

using isa::Instruction;
using isa::Opcode;
using isa::OpcodeInfo;
using isa::RegClass;

namespace
{

std::string
rejectAt(std::int32_t index, const char *why)
{
    return "instruction " + std::to_string(index) + ": " + why;
}

} // namespace

Predecoded
Predecoded::build(const isa::Program &prog, const SimConfig &cfg)
{
    Predecoded pd;
    pd.code.reserve(prog.code.size());

    auto fail = [&](std::int32_t index, const char *why) {
        pd.reject = rejectAt(index, why);
        pd.valid = false;
        return pd;
    };

    // The strictest operand limit over every reachable map-enable
    // state (see the class comment in predecode.hh).
    int reg_limit[isa::numRegClasses];
    for (int c = 0; c < isa::numRegClasses; ++c) {
        auto cls = static_cast<RegClass>(c);
        reg_limit[c] = cfg.rc.enabled ? cfg.rc.core(cls)
                                      : cfg.rc.total(cls);
    }

    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &ins = prog.code[i];
        auto index = static_cast<std::int32_t>(i);
        auto opv = static_cast<std::size_t>(ins.op);
        if (opv >= static_cast<std::size_t>(Opcode::NUM_OPCODES))
            return fail(index, "opcode out of range");
        const OpcodeInfo &info = isa::opcodeInfo(ins.op);

        for (int k = 0; k < info.numSrcs; ++k)
            if (ins.src[k].idx >=
                reg_limit[static_cast<int>(ins.src[k].cls)])
                return fail(index, "source register out of range");
        if (info.hasDst &&
            ins.dst.idx >= reg_limit[static_cast<int>(ins.dst.cls)])
            return fail(index, "destination register out of range");

        if (info.isConnect) {
            if (!cfg.rc.enabled)
                return fail(index, "connect without RC support");
            if (ins.nconn > 2)
                return fail(index, "connect pair count out of range");
            for (int k = 0; k < ins.nconn; ++k) {
                if (ins.conn[k].mapIdx >= cfg.rc.core(ins.connCls))
                    return fail(index, "connect map index out of "
                                       "range");
                if (ins.conn[k].phys >= cfg.rc.total(ins.connCls))
                    return fail(index, "connect physical register "
                                       "out of range");
            }
        }

        int latency = cfg.machine.lat.latencyOf(info.latClass);
        if (latency < 0 || latency > 255)
            return fail(index, "latency not representable");

        PdIns p;
        p.op = static_cast<std::uint8_t>(ins.op);
        p.latency = static_cast<std::uint8_t>(latency);
        p.origin = static_cast<std::uint8_t>(ins.origin);
        if (info.hasDst)
            p.flags |= PdIns::HasDst;
        if (isa::usesMemoryChannel(ins.op))
            p.flags |= PdIns::UsesMem;
        if (info.isConnect) {
            p.flags |= PdIns::IsConnect;
            if (cfg.machine.lat.connectLatency >= 1)
                p.flags |= PdIns::MarkDirty;
        }
        if (ins.predictTaken)
            p.flags |= PdIns::PredictTaken;

        p.meta = static_cast<std::uint8_t>(
            (info.numSrcs & 3) |
            (static_cast<int>(ins.src[0].cls) << 2) |
            (static_cast<int>(ins.src[1].cls) << 3) |
            (static_cast<int>(ins.dst.cls) << 4) |
            (static_cast<int>(ins.connCls) << 5) |
            ((ins.nconn & 3) << 6));
        for (int k = 0; k < 2; ++k) {
            p.src[k] = ins.src[k].idx;
            p.connMap[k] = ins.conn[k].mapIdx;
            p.connPhys[k] = ins.conn[k].phys;
            if (ins.conn[k].isDef)
                p.connDef |= static_cast<std::uint8_t>(1u << k);
        }
        p.dst = ins.dst.idx;
        p.imm = ins.imm;
        p.target = ins.target;

        pd.code.push_back(p);
    }

    pd.valid = true;
    return pd;
}

} // namespace rcsim::sim
