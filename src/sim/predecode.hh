/**
 * @file
 * Predecoded instruction side-table for the pipeline simulator.
 *
 * Everything the issue loop needs per instruction that is invariant
 * for a given (Program, SimConfig) pair is flattened once, up front:
 * the OpcodeInfo bits, the execution latency already resolved through
 * LatencyConfig::latencyOf, the memory-channel use (loads/stores plus
 * the stack traffic of jsr/rts), the provenance index and the operand
 * fields.  Static validation runs over the whole program at build
 * time — opcode range, register-operand bounds against the mapping
 * table, connect pair bounds — so the specialized issue loops
 * (simulator_fast.cc) carry no per-issue limit checks at all.  A
 * program that fails any static check simply yields valid == false
 * and the simulator falls back to the fully checked generic loop.
 */

#ifndef RCSIM_SIM_PREDECODE_HH
#define RCSIM_SIM_PREDECODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/sim_config.hh"

namespace rcsim::sim
{

/**
 * One predecoded instruction: a 28-byte flat record read with a
 * single cache line touch per issue.  Register fields hold the same
 * map indices / physical numbers as the Instruction they were built
 * from; the build step has already proven them in range for every
 * reachable map-enable state, so the issue loop indexes directly.
 */
struct PdIns
{
    // -- flag bits ------------------------------------------------------
    static constexpr std::uint8_t HasDst = 1u << 0;
    static constexpr std::uint8_t UsesMem = 1u << 1; // incl. jsr/rts
    static constexpr std::uint8_t IsConnect = 1u << 2;
    // isConnect && connectLatency >= 1: the issue loop must stamp the
    // touched map entries dirty (one-cycle connect model).
    static constexpr std::uint8_t MarkDirty = 1u << 3;
    static constexpr std::uint8_t PredictTaken = 1u << 4;

    std::uint8_t op = 0;      // isa::Opcode
    std::uint8_t flags = 0;   // flag bits above
    std::uint8_t latency = 0; // latencyOf(latClass), pre-resolved
    std::uint8_t origin = 0;  // isa::InstrOrigin

    // Operand metadata: bits 0-1 numSrcs, bit 2 src0 class, bit 3
    // src1 class, bit 4 dst class, bit 5 connect class (0 = Int,
    // 1 = Fp), bits 6-7 connect pair count.
    std::uint8_t meta = 0;
    std::uint8_t connDef = 0; // bit k: conn[k] is a def pair

    std::uint16_t src[2] = {0, 0};
    std::uint16_t dst = 0;

    Word imm = 0;
    std::int32_t target = -1;

    std::uint16_t connMap[2] = {0, 0};
    std::uint16_t connPhys[2] = {0, 0};

    int numSrcs() const { return meta & 3; }
    int srcClsIdx(int k) const { return (meta >> (2 + k)) & 1; }
    int dstClsIdx() const { return (meta >> 4) & 1; }
    int connClsIdx() const { return (meta >> 5) & 1; }
    int nconn() const { return meta >> 6; }
    bool connIsDef(int k) const { return (connDef >> k) & 1; }

    isa::RegClass
    srcCls(int k) const
    {
        return static_cast<isa::RegClass>(srcClsIdx(k));
    }
    isa::RegClass
    dstCls() const
    {
        return static_cast<isa::RegClass>(dstClsIdx());
    }
    isa::RegClass
    connCls() const
    {
        return static_cast<isa::RegClass>(connClsIdx());
    }
};

static_assert(sizeof(PdIns) == 28, "keep the record one line-touch");

/**
 * The predecoded program.  Built once per (Program, SimConfig) pair;
 * immutable afterwards, so sweep points sharing a program share one
 * table (harness/predecode_cache.hh).
 */
struct Predecoded
{
    std::vector<PdIns> code;
    bool valid = false; // static validation passed
    std::string reject; // first validation failure, for diagnostics

    /**
     * Flatten + statically validate @p prog under @p cfg.  The only
     * config fields consulted are the ones that change the table:
     * the latency parameters (load / connect latency) and the RC
     * register-file geometry (enabled, core and total sizes).
     *
     * Validation is conservative: with RC enabled, every register
     * operand must be a legal *map index* (idx < core size), which is
     * the strictest limit over both map-enable states.  A program
     * that addresses extended registers directly while the map is
     * disabled (idx in [core, total), legal at runtime inside a trap
     * handler) is rejected here and runs on the generic loop instead.
     */
    static Predecoded build(const isa::Program &prog,
                            const SimConfig &cfg);
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_PREDECODE_HH
