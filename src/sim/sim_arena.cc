#include "sim/sim_arena.hh"

#include <cstdlib>

namespace rcsim::sim
{

namespace
{

/** RCSIM_ARENA: unset, empty or anything but "0" means reuse on. */
bool
arenaReuseEnabled()
{
    static const bool enabled = [] {
        const char *e = std::getenv("RCSIM_ARENA");
        return e == nullptr || *e == '\0' ||
               !(e[0] == '0' && e[1] == '\0');
    }();
    return enabled;
}

} // namespace

Simulator &
SimArena::acquire(const isa::Program &prog, const SimConfig &cfg,
                  std::shared_ptr<const Predecoded> predecoded)
{
    if (sim_ && arenaReuseEnabled()) {
        sim_->rebind(prog, cfg, std::move(predecoded));
        ++rebinds_;
    } else {
        sim_ = std::make_unique<Simulator>(prog, cfg,
                                           std::move(predecoded));
    }
    return *sim_;
}

} // namespace rcsim::sim
