/**
 * @file
 * The execution-driven pipeline simulator.
 *
 * Models the paper's evaluation machine (Section 5.2): an in-order
 * superscalar with homogeneous pipelined function units, a configurable
 * issue width (1-8), a limited number of memory channels, deterministic
 * instruction latencies (Table 1), CRAY-1-style register interlocking
 * (issue stalls while a source is not ready or the destination is
 * busy) and a 100 % cache hit rate.  With RC enabled it implements the
 * register mapping table in the decode path, zero- or one-cycle
 * connect instructions (Section 2.4), the jsr/rts map reset (Section
 * 4.1), the PSW map-enable bypass for traps and interrupts (Section
 * 4.3) and both context-save formats (Section 4.2).
 *
 * Functional execution happens at issue time in program order, so the
 * architectural results are exact while the cycle count reflects the
 * issue-limited timing.
 */

#ifndef RCSIM_SIM_SIMULATOR_HH
#define RCSIM_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "sim/machine_state.hh"
#include "sim/probe.hh"
#include "support/sim_counters.hh"
#include "support/stats.hh"

namespace rcsim::sim
{

struct PdIns;
struct Predecoded;
struct FastCtx;

/** Why a simulation stopped (machine-readable outcome). */
enum class StopReason : std::uint8_t
{
    Halted,     // program executed halt
    Error,      // architectural / model error (see SimResult::error)
    CycleLimit, // SimConfig::maxCycles exhausted (possible hang)
    Deadline,   // SimConfig::cancel fired (wall-clock watchdog)
};

const char *toString(StopReason reason);

/** Outcome of a simulation. */
struct SimResult
{
    bool ok = false;
    StopReason reason = StopReason::Error;
    std::string error;
    Cycle cycles = 0;
    Count instructions = 0; // instructions issued (connects included)
    StatGroup stats;
};

/** Runs one machine program to completion. */
class Simulator
{
  public:
    Simulator(const isa::Program &prog, const SimConfig &cfg);

    /**
     * Construct with an already-built predecoded table (see
     * harness/predecode_cache.hh).  @p predecoded must have been
     * built from exactly this (program, config) pair — the cache
     * guarantees it by hashing the table's inputs; nullptr behaves
     * like the two-argument constructor.
     */
    Simulator(const isa::Program &prog, const SimConfig &cfg,
              std::shared_ptr<const Predecoded> predecoded);

    /**
     * Re-target this simulator at a new (program, config) pair, as
     * if freshly constructed — but reusing the register-file,
     * scoreboard, map and memory buffers instead of reallocating
     * them (the per-worker arena path, sim/sim_arena.hh).  Detaches
     * any probe; @p prog must outlive the next rebind.  Ends in
     * reset(), so the subsequent run() is bit-identical to one from
     * a fresh Simulator(prog, cfg, predecoded).
     */
    void rebind(const isa::Program &prog, const SimConfig &cfg,
                std::shared_ptr<const Predecoded> predecoded = nullptr);

    /** Reset and run until halt (or error / cycle limit). */
    SimResult run();

    // -- Stepping interface for directed tests -------------------------

    /** Reset the machine to the program's initial state. */
    void reset();

    /**
     * Execute up to @p budget more cycles.
     * @return true when the program halted.
     */
    bool step(Cycle budget);

    bool halted() const { return halted_; }

    /** Package the result accumulated so far. */
    SimResult result() const;

    MachineState &state() { return state_; }
    const MachineState &state() const { return state_; }

    Cycle currentCycle() const { return cycle_; }

    /** Issue trace collected when SimConfig::traceLimit > 0. */
    const std::string &trace() const { return trace_; }

    /**
     * Attach an observation/intervention probe (nullptr detaches).
     * The probe must outlive the simulator or be detached first; it
     * survives reset().
     */
    void attachProbe(SimProbe *probe) { probe_ = probe; }

    /**
     * Rebuild the predecoded side-table from the (possibly mutated)
     * program.  A probe that rewrites Program::code — the
     * fault-injection engine does — must call this from onCycle()
     * right after the mutation, or the specialized loops keep
     * executing the stale predecode.  Falls back to the generic loop
     * permanently when the mutated program no longer validates.
     */
    void invalidatePredecode();

    /**
     * True when this simulator runs the fully checked reference loop
     * (SimConfig::forceGeneric, RCSIM_GENERIC_SIM=1, or a program
     * that failed static predecode validation).
     */
    bool usingGenericLoop() const { return useGeneric_; }

  private:
    /**
     * Shared tail of construction and rebind(): validate the config,
     * cache the mode flags, build (or adopt) the predecoded table
     * and reset().
     */
    void configure(std::shared_ptr<const Predecoded> predecoded);

    /** Issue one cycle's group; updates pc/cycle bookkeeping. */
    void issueCycle();

    /**
     * Per-cycle window bookkeeping shared by every loop variant:
     * trace-counter emission and the watchdog cancel poll on the
     * traceWindowCycles boundary.  Returns false when the deadline
     * fired (the run is over).
     */
    bool cycleWindow();

    /** The generic issue loop body after cycleWindow() + probe. */
    void issueCycleTail();

    // -- Specialized loops (simulator_fast.cc) -------------------------
    //
    // The hot configurations run template variants of the issue loop
    // compiled per <rcOn, hasProbe, traceOn> so feature conditionals
    // vanish from the per-instruction path.  stepFast() selects the
    // variant at group boundaries and re-selects whenever an executed
    // MTPSW / TRAP / RFE (or a probe) may have changed the flags.

    /** Fast-path driver: dispatches specialized loops until @p end. */
    void stepFast(Cycle end);

    /** One probed cycle: re-select the variant after the hook ran. */
    void dispatchProbedCycle();

    /**
     * Multi-cycle specialized loop; returns when the mode flags no
     * longer match the template arguments (re-dispatch), the budget
     * is exhausted, or the run ended.
     */
    template <bool RcOn, bool Trace> void runLoopT(Cycle end);

    /**
     * Hoist everything loop-invariant (predecode base, raw map /
     * scoreboard / dirty-stamp storage, machine widths, the next
     * interrupt cycle) into @p ctx; built once per dispatch.
     */
    void initFastCtx(FastCtx &ctx);

    /** Specialized mirror of issueCycleTail(). */
    template <bool RcOn, bool Probe, bool Trace>
    void issueCycleTailT(FastCtx &ctx);

    /** Specialized mirror of execute(). */
    template <bool RcOn, bool Probe, bool Trace>
    bool executeT(const PdIns &pd, const int sphys[2], int dphys,
                  const FastCtx &ctx);

    bool
    rcOnNow() const
    {
        return rcEnabled_ && state_.psw().mapEnable();
    }

    /**
     * Functional execution of one instruction; returns false when
     * the group must end after it (control flow, psw write).
     *
     * @p sphys / @p dphys are the physical registers the operands
     * already resolved to in issueCycle() — execution must not
     * resolve again (a connect executing earlier in the same group
     * may have changed the map since this instruction was decoded).
     * @p rc_on is the map-enable state the group issued under,
     * likewise threaded through instead of recomputed (it cannot
     * change inside a group: every PSW writer ends its group).
     */
    bool execute(const isa::Instruction &ins,
                 const isa::OpcodeInfo &info, const int sphys[2],
                 int dphys, bool rc_on);

    void enterTrap(std::int32_t return_pc);

    /**
     * Cold path: emit the per-window trace counters (progress and
     * stall-cause series).  Called every traceWindowCycles cycles
     * while tracing is enabled; pure observation — reads counters,
     * mutates nothing.
     */
    void traceWindow();

    void
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg;
        halted_ = true;
    }

    /** Interlock scoreboard entry; inline, hit per operand. */
    Cycle &
    readyOf(isa::RegClass cls, int phys)
    {
        return cls == isa::RegClass::Int ? readyInt_[phys]
                                         : readyFp_[phys];
    }

    // A pointer, not a reference: rebind() retargets it (cfg_ is
    // by-value and simply reassigned; state_ rebinds alongside).
    const isa::Program *prog_;
    SimConfig cfg_;
    MachineState state_;

    // Predecoded side-table (predecode.hh); shared with the harness
    // cache so sweep points over one program build it once.  When
    // useGeneric_ is set (forced via config/env, or static validation
    // failed) the table is unused and the reference loop runs.
    std::shared_ptr<const Predecoded> pd_;
    bool useGeneric_ = false;
    bool rcEnabled_ = false; // cfg_.rc.enabled, cached for rcOnNow()

    std::vector<Cycle> readyInt_;
    std::vector<Cycle> readyFp_;

    Cycle cycle_ = 0;
    Cycle nextFetchCycle_ = 0;
    Count instructions_ = 0;
    bool halted_ = false;
    bool cycleLimitHit_ = false;
    bool deadlineHit_ = false;
    std::string error_;
    SimProbe *probe_ = nullptr;
    SimCounterArray counters_;

    // trace::on() cached at reset() so every per-event check in the
    // hot loop is a member-bool test.  A power of two: the window
    // emission check is one mask per cycle.  The watchdog cancel
    // flag (when armed) is polled on the same window boundary, so a
    // run without a deadline pays the identical single dead branch.
    static constexpr Cycle traceWindowCycles = 8192;
    bool traceOn_ = false;
    bool pollCancel_ = false;
    std::size_t nextInterrupt_ = 0;

    // Map entries updated this cycle (one-cycle connect model).
    // Generation-stamped: entry == cycle_ + 1 means "dirty this
    // cycle"; stale stamps from earlier cycles never match, so no
    // per-cycle clearing is needed.
    std::vector<Cycle> dirtyMap_[isa::numRegClasses];

    // Dynamic instruction counts by provenance (Figure 9's static
    // accounting, measured dynamically).
    Count originDyn_[6] = {};

    std::string trace_;
    Count traceLeft_ = 0;
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_SIMULATOR_HH
