/**
 * @file
 * The specialized issue loops.
 *
 * issueCycleTailT / executeT are line-for-line mirrors of the generic
 * issueCycleTail / execute in simulator.cc, reading the predecoded
 * side-table (predecode.hh) instead of the Instruction + OpcodeInfo
 * pair and compiled per <rcOn, hasProbe, traceOn>:
 *
 *   rcOn    map-enable resolution is unconditional (raw map indexing,
 *           no bounds checks — statically validated) or elided
 *           entirely, and the one-cycle-connect dirty tracking only
 *           exists in the rcOn variant (its stalls are gated on rcOn,
 *           which cannot change inside a cycle);
 *   hasProbe  commit-effect construction compiles out when no probe
 *           is attached;
 *   traceOn  the issue-trace buffer and trace instants compile out
 *           when tracing is off and the trace budget is empty.
 *
 * On top of the per-instruction specialization, everything that is
 * loop-invariant per dispatch lives in a FastCtx of plain locals —
 * predecode base, raw scoreboard / dirty / map storage, machine
 * widths, the next interrupt cycle — because the simulated memory is
 * a byte array and every store through it legally aliases the
 * simulator's own members, so the compiler cannot hoist those loads
 * itself.
 *
 * stepFast() picks the variant at group boundaries and re-selects
 * whenever the flags may have changed: MTPSW / TRAP / RFE end their
 * issue group (execute returns false), interrupts are accepted at
 * cycle boundaries, and a probe may mutate anything — so with a probe
 * attached the loop runs one cycle per dispatch, selecting the
 * variant *after* the onCycle() hook.  Any divergence between these
 * loops and the generic reference is a bug; tests/test_predecode.cc
 * fuzzes the two against each other down to the commit streams.
 */

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/predecode.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace rcsim::sim
{

using isa::Opcode;
using isa::RegClass;

/** Loop-invariant state of one specialized dispatch (see above). */
struct FastCtx
{
    const PdIns *code = nullptr;
    std::int32_t codeSize = 0;
    int issueWidth = 0;
    int memChannels = 0;

    // Interlock scoreboards, dirty stamps and raw map storage by
    // register class; all pointer-stable for the run (fixed sizes,
    // in-place mutation only).
    Cycle *ready[isa::numRegClasses] = {};
    Cycle *dirty[isa::numRegClasses] = {};
    const core::PhysIndex *rmap[isa::numRegClasses] = {};
    const core::PhysIndex *wmap[isa::numRegClasses] = {};

    // Cycle of the next pending external interrupt; "never" when the
    // schedule is exhausted.  Maintained by the interrupt acceptance
    // path so the per-cycle check is one compare.
    static constexpr Cycle noInterrupt =
        std::numeric_limits<Cycle>::max();
    Cycle nextIrqAt = noInterrupt;
};

void
Simulator::initFastCtx(FastCtx &ctx)
{
    ctx.code = pd_->code.data();
    ctx.codeSize = static_cast<std::int32_t>(pd_->code.size());
    ctx.issueWidth = cfg_.machine.issueWidth;
    ctx.memChannels = cfg_.machine.memChannels;
    ctx.ready[0] = readyInt_.data();
    ctx.ready[1] = readyFp_.data();
    for (int c = 0; c < isa::numRegClasses; ++c) {
        auto cls = static_cast<RegClass>(c);
        ctx.dirty[c] = dirtyMap_[c].data();
        ctx.rmap[c] = state_.map(cls).readMapData();
        ctx.wmap[c] = state_.map(cls).writeMapData();
    }
    ctx.nextIrqAt = nextInterrupt_ < cfg_.interruptCycles.size()
                        ? cfg_.interruptCycles[nextInterrupt_]
                        : FastCtx::noInterrupt;
}

void
Simulator::stepFast(Cycle end)
{
    while (!halted_ && cycle_ < end && !useGeneric_) {
        if (probe_ != nullptr) {
            if (!cycleWindow())
                return;
            probe_->onCycle(*this, cycle_);
            if (useGeneric_) {
                // The probe invalidated the predecode and the mutated
                // program no longer validates: finish this cycle on
                // the reference loop; step() keeps using it.
                issueCycleTail();
                continue;
            }
            dispatchProbedCycle();
        } else if (rcOnNow()) {
            if (traceOn_ || traceLeft_ > 0)
                runLoopT<true, true>(end);
            else
                runLoopT<true, false>(end);
        } else {
            if (traceOn_ || traceLeft_ > 0)
                runLoopT<false, true>(end);
            else
                runLoopT<false, false>(end);
        }
    }
}

void
Simulator::dispatchProbedCycle()
{
    // The probe may have mutated anything, including the program (and
    // with it pd_): rebuild the hoisted context every cycle.
    FastCtx ctx;
    initFastCtx(ctx);
    const bool rc = rcOnNow();
    const bool tr = traceOn_ || traceLeft_ > 0;
    if (rc)
        tr ? issueCycleTailT<true, true, true>(ctx)
           : issueCycleTailT<true, true, false>(ctx);
    else
        tr ? issueCycleTailT<false, true, true>(ctx)
           : issueCycleTailT<false, true, false>(ctx);
}

template <bool RcOn, bool Trace>
void
Simulator::runLoopT(Cycle end)
{
    FastCtx ctx;
    initFastCtx(ctx);
    const bool tr_on = traceOn_;
    const bool poll = pollCancel_;
    while (!halted_ && cycle_ < end) {
        if (rcOnNow() != RcOn)
            return; // re-select at the group boundary
        if constexpr (Trace) {
            if (!traceOn_ && traceLeft_ == 0)
                return; // trace budget drained: drop to the lean loop
        }
        if ((tr_on | poll) &&
            (cycle_ & (traceWindowCycles - 1)) == 0) {
            if (tr_on)
                traceWindow();
            if (poll &&
                cfg_.cancel->load(std::memory_order_relaxed)) {
                deadlineHit_ = true;
                fail("wall-clock deadline exceeded");
                return;
            }
        }
        issueCycleTailT<RcOn, false, Trace>(ctx);
    }
}

template <bool RcOn, bool Probe, bool Trace>
void
Simulator::issueCycleTailT(FastCtx &ctx)
{
    // External interrupts are accepted at cycle boundaries.
    if (cycle_ >= ctx.nextIrqAt) {
        ++nextInterrupt_;
        ctx.nextIrqAt = nextInterrupt_ < cfg_.interruptCycles.size()
                            ? cfg_.interruptCycles[nextInterrupt_]
                            : FastCtx::noInterrupt;
        enterTrap(state_.pc);
        nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
        ++cycle_;
        return;
    }

    if (cycle_ < nextFetchCycle_) {
        counters_.add(SimCounter::CyclesRedirect);
        ++cycle_;
        return;
    }

    int slots = ctx.issueWidth;
    int mem = ctx.memChannels;
    bool any_dirty = false;
    const Cycle cycle = cycle_;
    const Cycle dirty_stamp = cycle + 1;
    std::int32_t pc = state_.pc;

    int issued = 0;
    while (slots > 0 && !halted_) {
        if (static_cast<std::uint32_t>(pc) >=
            static_cast<std::uint32_t>(ctx.codeSize)) {
            state_.pc = pc;
            fail("program counter out of range");
            break;
        }
        const PdIns &pd = ctx.code[pc];
        const int nsrcs = pd.numSrcs();

        // ---- One-cycle connects: stall consumers of map entries
        // updated earlier this same cycle (Section 2.4).  The stall
        // and the stamps are both gated on rcOn, which cannot change
        // inside a cycle, so the whole mechanism compiles out of the
        // map-off variant. ----
        if constexpr (RcOn) {
            if (any_dirty && !(pd.flags & PdIns::IsConnect)) {
                bool dirty = false;
                for (int k = 0; k < nsrcs && !dirty; ++k)
                    if (ctx.dirty[pd.srcClsIdx(k)][pd.src[k]] ==
                        dirty_stamp)
                        dirty = true;
                if (!dirty && (pd.flags & PdIns::HasDst) &&
                    ctx.dirty[pd.dstClsIdx()][pd.dst] == dirty_stamp)
                    dirty = true;
                if (dirty) {
                    counters_.add(SimCounter::StallMapUpdate);
                    break;
                }
            }
        }

        // ---- Operand resolution: bounds were proven at predecode
        // time, so this is a raw map read (or the identity). ----
        int sphys[2] = {0, 0};
        int dphys = -1;
        if constexpr (RcOn) {
            for (int k = 0; k < nsrcs; ++k)
                sphys[k] = ctx.rmap[pd.srcClsIdx(k)][pd.src[k]];
            if (pd.flags & PdIns::HasDst)
                dphys = ctx.wmap[pd.dstClsIdx()][pd.dst];
        } else {
            sphys[0] = pd.src[0];
            sphys[1] = pd.src[1];
            if (pd.flags & PdIns::HasDst)
                dphys = pd.dst;
        }

        // ---- Register interlocks (CRAY-1 style). ----
        bool stalled = false;
        for (int k = 0; k < nsrcs; ++k)
            if (ctx.ready[pd.srcClsIdx(k)][sphys[k]] > cycle) {
                counters_.add(SimCounter::StallSrc);
                stalled = true;
                break;
            }
        if (!stalled && (pd.flags & PdIns::HasDst) &&
            ctx.ready[pd.dstClsIdx()][dphys] > cycle) {
            counters_.add(SimCounter::StallDestBusy);
            stalled = true;
        }
        if (!stalled && (pd.flags & PdIns::IsConnect) &&
            !cfg_.fetchAfterDispatch) {
            // Register fetch before dispatch (Figure 6): connect-use
            // forwards the register *value*, so the source register
            // must be ready (see the generic loop).
            const int nc = pd.nconn();
            for (int k = 0; k < nc; ++k)
                if (!pd.connIsDef(k) &&
                    ctx.ready[pd.connClsIdx()][pd.connPhys[k]] >
                        cycle) {
                    counters_.add(SimCounter::StallSrc);
                    stalled = true;
                    break;
                }
        }
        if (stalled)
            break;

        // ---- Structural hazard: memory channels. ----
        const bool uses_mem = (pd.flags & PdIns::UsesMem) != 0;
        if (uses_mem && mem == 0) {
            counters_.add(SimCounter::StallMemChannel);
            break;
        }

        // ---- Issue. ----
        if constexpr (Trace) {
            if (traceLeft_ > 0) {
                --traceLeft_;
                char head[32];
                int n = std::snprintf(
                    head, sizeof head, "%llu  %d: ",
                    static_cast<unsigned long long>(cycle), pc);
                trace_.append(head, static_cast<std::size_t>(n));
                trace_ += prog_->code[pc].toString();
                trace_ += '\n';
            }
        }
        ++instructions_;
        originDyn_[pd.origin] += 1;
        ++issued;
        --slots;
        if (uses_mem)
            --mem;
        if constexpr (RcOn) {
            if (pd.flags & PdIns::MarkDirty) {
                const int nc = pd.nconn();
                for (int k = 0; k < nc; ++k) {
                    ctx.dirty[pd.connClsIdx()][pd.connMap[k]] =
                        dirty_stamp;
                    any_dirty = true;
                }
            }
        }

        state_.pc = pc;
        if (!executeT<RcOn, Probe, Trace>(pd, sphys, dphys, ctx))
            break;
        pc = state_.pc;
    }

    if (issued == 0)
        counters_.add(SimCounter::CyclesStalled);
    counters_.addIssued(issued);
    cycle_ = cycle + 1;
}

template <bool RcOn, bool Probe, bool Trace>
bool
Simulator::executeT(const PdIns &pd, const int sphys[2], int dphys,
                    const FastCtx &ctx)
{
    auto sval = [&](int k) { return state_.readInt(sphys[k]); };
    auto fval = [&](int k) { return state_.readFp(sphys[k]); };
    auto uw = [](Word w) { return static_cast<UWord>(w); };

    const int latency = pd.latency;
    constexpr int intCls = static_cast<int>(RegClass::Int);
    constexpr int fpCls = static_cast<int>(RegClass::Fp);

    auto write_int = [&](Word v) {
        state_.writeInt(dphys, v);
        ctx.ready[intCls][dphys] = cycle_ + latency;
        if constexpr (Probe) {
            if (probe_)
                probe_->onCommit({CommitEffect::Kind::IntWrite,
                                  cycle_, state_.pc, dphys, 0,
                                  static_cast<std::uint64_t>(
                                      static_cast<UWord>(v))});
        }
    };
    auto write_fp = [&](double v) {
        state_.writeFp(dphys, v);
        ctx.ready[fpCls][dphys] = cycle_ + latency;
        if constexpr (Probe) {
            if (probe_)
                probe_->onCommit({CommitEffect::Kind::FpWrite, cycle_,
                                  state_.pc, dphys, 0,
                                  std::bit_cast<std::uint64_t>(v)});
        }
    };
    auto finish_write = [&]() {
        if constexpr (RcOn)
            state_.map(pd.dstCls())
                .applyWriteSideEffect(pd.dst, cfg_.rc.model);
    };

    auto mem_addr = [&](int base_src) {
        return static_cast<Addr>(uw(sval(base_src)) + uw(pd.imm));
    };

    auto branch = [&](bool taken) {
        if (taken) {
            state_.pc = pd.target;
            counters_.add(SimCounter::TakenBranches);
        } else {
            ++state_.pc;
        }
        if (taken != ((pd.flags & PdIns::PredictTaken) != 0)) {
            counters_.add(SimCounter::Mispredicts);
            nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
            return false;
        }
        return !taken; // correctly-predicted taken still ends fetch
    };

    switch (static_cast<Opcode>(pd.op)) {
      case Opcode::NOP:
        ++state_.pc;
        return true;
      case Opcode::HALT:
        halted_ = true;
        return false;

      case Opcode::ADD:
        write_int(static_cast<Word>(uw(sval(0)) + uw(sval(1))));
        break;
      case Opcode::SUB:
        write_int(static_cast<Word>(uw(sval(0)) - uw(sval(1))));
        break;
      case Opcode::AND:
        write_int(sval(0) & sval(1));
        break;
      case Opcode::OR:
        write_int(sval(0) | sval(1));
        break;
      case Opcode::XOR:
        write_int(sval(0) ^ sval(1));
        break;
      case Opcode::NOR:
        write_int(~(sval(0) | sval(1)));
        break;
      case Opcode::SLL:
        write_int(static_cast<Word>(uw(sval(0)) << (sval(1) & 31)));
        break;
      case Opcode::SRL:
        write_int(static_cast<Word>(uw(sval(0)) >> (sval(1) & 31)));
        break;
      case Opcode::SRA:
        write_int(sval(0) >> (sval(1) & 31));
        break;
      case Opcode::SLT:
        write_int(sval(0) < sval(1));
        break;
      case Opcode::SLTU:
        write_int(uw(sval(0)) < uw(sval(1)));
        break;

      case Opcode::ADDI:
        write_int(static_cast<Word>(uw(sval(0)) + uw(pd.imm)));
        break;
      case Opcode::ANDI:
        write_int(sval(0) & pd.imm);
        break;
      case Opcode::ORI:
        write_int(sval(0) | pd.imm);
        break;
      case Opcode::XORI:
        write_int(sval(0) ^ pd.imm);
        break;
      case Opcode::SLLI:
        write_int(static_cast<Word>(uw(sval(0)) << (pd.imm & 31)));
        break;
      case Opcode::SRLI:
        write_int(static_cast<Word>(uw(sval(0)) >> (pd.imm & 31)));
        break;
      case Opcode::SRAI:
        write_int(sval(0) >> (pd.imm & 31));
        break;
      case Opcode::SLTI:
        write_int(sval(0) < pd.imm);
        break;
      case Opcode::LI:
        write_int(pd.imm);
        break;
      case Opcode::LUI:
        write_int(static_cast<Word>(uw(pd.imm) << 16));
        break;
      case Opcode::MOV:
        write_int(sval(0));
        break;

      case Opcode::MUL:
        write_int(static_cast<Word>(uw(sval(0)) * uw(sval(1))));
        break;
      case Opcode::DIV:
        if (sval(1) == 0) {
            fail("integer division by zero");
            return false;
        }
        write_int(sval(0) / sval(1));
        break;
      case Opcode::REM:
        if (sval(1) == 0) {
            fail("integer remainder by zero");
            return false;
        }
        write_int(sval(0) % sval(1));
        break;

      case Opcode::FADD:
        write_fp(fval(0) + fval(1));
        break;
      case Opcode::FSUB:
        write_fp(fval(0) - fval(1));
        break;
      case Opcode::FNEG:
        write_fp(-fval(0));
        break;
      case Opcode::FABS:
        write_fp(std::fabs(fval(0)));
        break;
      case Opcode::FMOV:
        write_fp(fval(0));
        break;
      case Opcode::FMIN:
        write_fp(std::fmin(fval(0), fval(1)));
        break;
      case Opcode::FMAX:
        write_fp(std::fmax(fval(0), fval(1)));
        break;
      case Opcode::FCMP_LT:
        write_int(fval(0) < fval(1));
        break;
      case Opcode::FCMP_LE:
        write_int(fval(0) <= fval(1));
        break;
      case Opcode::FCMP_EQ:
        write_int(fval(0) == fval(1));
        break;
      case Opcode::CVT_IF:
        write_fp(static_cast<double>(sval(0)));
        break;
      case Opcode::CVT_FI:
        write_int(static_cast<Word>(
            static_cast<std::int64_t>(fval(0))));
        break;
      case Opcode::FMUL:
        write_fp(fval(0) * fval(1));
        break;
      case Opcode::FDIV:
        write_fp(fval(0) / fval(1));
        break;

      case Opcode::LW: {
        Addr a = mem_addr(0);
        if (!state_.validAddr(a, 4)) {
            fail("load out of bounds");
            return false;
        }
        counters_.add(SimCounter::Loads);
        write_int(state_.loadWord(a));
        break;
      }
      case Opcode::LF: {
        Addr a = mem_addr(0);
        if (!state_.validAddr(a, 8)) {
            fail("load out of bounds");
            return false;
        }
        counters_.add(SimCounter::Loads);
        write_fp(state_.loadDouble(a));
        break;
      }
      case Opcode::SW: {
        Addr a = mem_addr(1);
        if (!state_.validAddr(a, 4)) {
            fail("store out of bounds");
            return false;
        }
        counters_.add(SimCounter::Stores);
        Word v = sval(0);
        state_.storeWord(a, v);
        if constexpr (Probe) {
            if (probe_)
                probe_->onCommit({CommitEffect::Kind::StoreWord,
                                  cycle_, state_.pc, 0, a,
                                  static_cast<std::uint64_t>(
                                      static_cast<UWord>(v))});
        }
        ++state_.pc;
        return true;
      }
      case Opcode::SF: {
        Addr a = mem_addr(1);
        if (!state_.validAddr(a, 8)) {
            fail("store out of bounds");
            return false;
        }
        counters_.add(SimCounter::Stores);
        double v = state_.readFp(sphys[0]);
        state_.storeDouble(a, v);
        if constexpr (Probe) {
            if (probe_)
                probe_->onCommit({CommitEffect::Kind::StoreDouble,
                                  cycle_, state_.pc, 0, a,
                                  std::bit_cast<std::uint64_t>(v)});
        }
        ++state_.pc;
        return true;
      }

      case Opcode::BEQ:
        return branch(sval(0) == sval(1));
      case Opcode::BNE:
        return branch(sval(0) != sval(1));
      case Opcode::BLT:
        return branch(sval(0) < sval(1));
      case Opcode::BGE:
        return branch(sval(0) >= sval(1));
      case Opcode::BLE:
        return branch(sval(0) <= sval(1));
      case Opcode::BGT:
        return branch(sval(0) > sval(1));

      case Opcode::J:
        state_.pc = pd.target;
        return false;

      case Opcode::JSR: {
        Word sp = state_.sp() - 4;
        if (!state_.validAddr(static_cast<Addr>(sp), 4)) {
            fail("stack overflow on jsr");
            return false;
        }
        state_.storeWord(static_cast<Addr>(sp), state_.pc + 1);
        state_.setSp(sp);
        ctx.ready[intCls][core::ArchConvention::stackPointer] =
            cycle_ + 1;
        state_.pc = pd.target;
        if (rcEnabled_) {
            state_.resetMaps(); // Section 4.1
            if constexpr (Trace) {
                if (traceOn_)
                    trace::instant(
                        "map_reset", "sim", "pc",
                        static_cast<std::uint64_t>(state_.pc));
            }
        }
        counters_.add(SimCounter::Calls);
        return false;
      }
      case Opcode::RTS: {
        Word sp = state_.sp();
        if (!state_.validAddr(static_cast<Addr>(sp), 4)) {
            fail("stack underflow on rts");
            return false;
        }
        state_.pc = state_.loadWord(static_cast<Addr>(sp));
        state_.setSp(sp + 4);
        ctx.ready[intCls][core::ArchConvention::stackPointer] =
            cycle_ + 1;
        if (rcEnabled_) {
            state_.resetMaps(); // Section 4.1
            if constexpr (Trace) {
                if (traceOn_)
                    trace::instant(
                        "map_reset", "sim", "pc",
                        static_cast<std::uint64_t>(state_.pc));
            }
        }
        return false;
      }

      case Opcode::TRAP:
        enterTrap(state_.pc + 1);
        nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
        return false;
      case Opcode::RFE:
        state_.psw().bits = state_.epsw;
        state_.pc = state_.epc;
        return false;
      case Opcode::MFPSW:
        write_int(static_cast<Word>(state_.psw().bits));
        break;
      case Opcode::MTPSW:
        state_.psw().bits = static_cast<UWord>(sval(0));
        ++state_.pc;
        return false; // mapping semantics may have changed

      case Opcode::CONNECT_USE:
      case Opcode::CONNECT_DEF:
      case Opcode::CONNECT_UU:
      case Opcode::CONNECT_DU:
      case Opcode::CONNECT_DD: {
        // RC support and pair bounds were statically validated.
        counters_.add(SimCounter::Connects);
        if constexpr (Trace) {
            if (traceOn_)
                trace::instant("connect", "sim", "pc",
                               static_cast<std::uint64_t>(state_.pc));
        }
        core::RegisterMappingTable &map = state_.map(pd.connCls());
        const int nc = pd.nconn();
        for (int k = 0; k < nc; ++k) {
            if (pd.connIsDef(k))
                map.connectDef(pd.connMap[k], pd.connPhys[k]);
            else
                map.connectUse(pd.connMap[k], pd.connPhys[k]);
        }
        ++state_.pc;
        return true;
      }

      default:
        fail("unimplemented opcode");
        return false;
    }

    // Common epilogue for register-writing straight-line ops.
    finish_write();
    ++state_.pc;
    return true;
}

} // namespace rcsim::sim
