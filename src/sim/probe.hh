/**
 * @file
 * Observation and intervention hooks for the pipeline simulator.
 *
 * A SimProbe attached to a Simulator sees every cycle boundary and
 * every committed architectural effect (register writeback or memory
 * store).  Probes are the attachment point for the fault-injection
 * engine and the divergence oracle in src/inject: injection mutates
 * state from onCycle(), the oracle records or checks the commit
 * stream from onCommit().  With no probe attached the simulator pays
 * only a null-pointer test per event, so the hot path is effectively
 * untouched.
 */

#ifndef RCSIM_SIM_PROBE_HH
#define RCSIM_SIM_PROBE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"

namespace rcsim::sim
{

class Simulator;

/** One committed architectural effect of an issued instruction. */
struct CommitEffect
{
    enum class Kind : std::uint8_t
    {
        IntWrite,    // integer register writeback
        FpWrite,     // floating-point register writeback
        StoreWord,   // 4-byte store
        StoreDouble, // 8-byte store
    };

    Kind kind = Kind::IntWrite;
    Cycle cycle = 0;
    std::int32_t pc = 0; // instruction index that committed
    std::int32_t loc = 0;     // physical register (writes)
    Addr addr = 0;            // memory address (stores)
    std::uint64_t bits = 0;   // value, as raw bits for doubles

    bool operator==(const CommitEffect &) const = default;

    /** "c123 pc45: ireg[7] <- 0x2a" (for divergence reports). */
    std::string toString() const;
};

/** Hook interface; attach with Simulator::attachProbe(). */
class SimProbe
{
  public:
    virtual ~SimProbe() = default;

    /**
     * Called at the start of every simulated cycle, before fetch and
     * interrupt acceptance.  The probe may mutate machine state
     * through @p sim (fault injection).  A probe that rewrites the
     * *program text* (isa::Program::code) must also call
     * sim.invalidatePredecode() afterwards so the specialized issue
     * loops drop their predecoded copy of the old instruction; plain
     * state mutation (registers, maps, PSW, memory) needs no such
     * call — the loop variant is re-selected after every onCycle().
     */
    virtual void onCycle(Simulator &sim, Cycle cycle)
    {
        (void)sim;
        (void)cycle;
    }

    /** Called for every committed register write and store. */
    virtual void onCommit(const CommitEffect &effect) { (void)effect; }
};

/** Fans simulator events out to several probes, in order. */
class ProbeChain : public SimProbe
{
  public:
    void add(SimProbe *probe) { probes_.push_back(probe); }

    void
    onCycle(Simulator &sim, Cycle cycle) override
    {
        for (SimProbe *p : probes_)
            p->onCycle(sim, cycle);
    }

    void
    onCommit(const CommitEffect &effect) override
    {
        for (SimProbe *p : probes_)
            p->onCommit(effect);
    }

  private:
    std::vector<SimProbe *> probes_;
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_PROBE_HH
