/**
 * @file
 * Simulator configuration: microarchitecture resources (Table 1 /
 * Section 5.2) plus the RC architecture extension parameters.
 */

#ifndef RCSIM_SIM_SIM_CONFIG_HH
#define RCSIM_SIM_SIM_CONFIG_HH

#include <atomic>
#include <vector>

#include "core/rc_config.hh"
#include "sched/machine_model.hh"
#include "support/types.hh"

namespace rcsim::sim
{

struct SimConfig
{
    /** Issue width, memory channels, latencies. */
    sched::MachineModel machine;

    /** Register file / RC configuration. */
    core::RcConfig rc;

    /** Give up after this many cycles (runaway guard). */
    Cycle maxCycles = 2'000'000'000ull;

    /**
     * Cooperative cancellation flag (wall-clock watchdog,
     * harness/watchdog.hh); nullptr disables.  Polled on the
     * 8192-cycle counter-window boundary only, so arming it changes
     * neither the instruction stream nor any statistic — a cancelled
     * run stops with StopReason::Deadline at the next window edge.
     */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Pipeline variant of Figures 5 and 6: when register fetch
     * happens *after* dispatch, a connect-use forwards updated
     * physical register numbers, so it need not wait for the
     * register's value; when fetch happens *before* dispatch (the
     * default modelled here), the connect-use forwards the value
     * itself and must wait until the register is ready.
     */
    bool fetchAfterDispatch = false;

    /**
     * Handler entry (instruction index) for TRAP instructions and
     * injected interrupts; -1 means traps are fatal.
     */
    std::int32_t trapVector = -1;

    /** Cycles at which to inject an external interrupt (tests). */
    std::vector<Cycle> interruptCycles;

    /**
     * Collect an issue trace ("cycle pc: disassembly" per issued
     * instruction) for the first @c traceLimit instructions; 0
     * disables tracing.
     */
    Count traceLimit = 0;

    /**
     * Run the fully checked generic issue loop instead of the
     * predecoded specialized loops (sim/predecode.hh).  The generic
     * loop is the reference implementation the fast paths are
     * differentially tested against; the RCSIM_GENERIC_SIM
     * environment variable forces the same thing process-wide.
     * Results are bit-identical either way — this only trades speed
     * for simplicity.
     */
    bool forceGeneric = false;

    /**
     * Branch redirect penalty on a misprediction: one front-end
     * bubble, plus one more when the RC mapping-table access needs an
     * extra decode stage (Section 2.4 / Figure 12).
     */
    int
    redirectPenalty() const
    {
        return 1 + (rc.extraPipeStage ? 1 : 0);
    }
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_SIM_CONFIG_HH
