/**
 * @file
 * Architected machine state: the enlarged register files, the two
 * register mapping tables, the PSW, memory and the program counter.
 * Also implements the two process-context formats of Section 4.2.
 */

#ifndef RCSIM_SIM_MACHINE_STATE_HH
#define RCSIM_SIM_MACHINE_STATE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/mapping_table.hh"
#include "core/psw.hh"
#include "isa/instruction.hh"
#include "sim/sim_config.hh"

namespace rcsim::sim
{

/**
 * Saved process context.  The format flag in the PSW selects what the
 * context-switch code must save: programs compiled for the original
 * architecture need only the core registers, extended-architecture
 * programs also need the extended registers and the connection state
 * (Section 4.2).
 */
struct ProcessContext
{
    core::ProcessorStatusWord psw;
    std::int32_t pc = 0;
    bool extended = false;

    // Core (always) and extended (extended format only) registers.
    std::vector<Word> iregs;
    std::vector<double> fregs;

    // Connection state (extended format only).
    core::RegisterMappingTable::Snapshot imap;
    core::RegisterMappingTable::Snapshot fmap;
};

/** The architected state of one RCM processor. */
class MachineState
{
  public:
    MachineState(const isa::Program &prog, const SimConfig &cfg);

    /** Reset registers, maps and memory to the program's image. */
    void reset();

    /**
     * Point this state at a different (program, config) pair and
     * re-shape the mapping tables for it, reusing the register-file
     * and memory buffers — the simulator-arena reuse path
     * (sim/sim_arena.hh).  Both referents must outlive the next
     * rebind; the caller (Simulator::rebind) follows with reset().
     */
    void rebind(const isa::Program &prog, const SimConfig &cfg);

    // -- Register access through the mapping table ---------------------

    // Resolution runs once per operand per simulated instruction, so
    // the table walk stays inline (see src/sim/simulator.cc).

    /** Physical register a source operand resolves to. */
    int
    resolveRead(const isa::Reg &r) const
    {
        if (!cfg_->rc.enabled || !psw_.mapEnable())
            return r.idx;
        return map(r.cls).readMap(r.idx);
    }

    /** Physical register a destination operand resolves to. */
    int
    resolveWrite(const isa::Reg &r) const
    {
        if (!cfg_->rc.enabled || !psw_.mapEnable())
            return r.idx;
        return map(r.cls).writeMap(r.idx);
    }

    Word readInt(int phys) const { return iregs_[phys]; }
    double readFp(int phys) const { return fregs_[phys]; }
    void writeInt(int phys, Word v) { iregs_[phys] = v; }
    void writeFp(int phys, double v) { fregs_[phys] = v; }

    core::RegisterMappingTable &
    map(isa::RegClass cls)
    {
        return cls == isa::RegClass::Int ? imap_ : fmap_;
    }
    const core::RegisterMappingTable &
    map(isa::RegClass cls) const
    {
        return cls == isa::RegClass::Int ? imap_ : fmap_;
    }

    /** jsr / rts / power-up: reset both mapping tables. */
    void resetMaps();

    core::ProcessorStatusWord &psw() { return psw_; }
    const core::ProcessorStatusWord &psw() const { return psw_; }

    // -- Memory ----------------------------------------------------------

    // Inline: the simulator touches memory once per load/store and
    // once per jsr/rts, all on the issue hot path.

    bool
    validAddr(Addr addr, int width) const
    {
        return addr + static_cast<Addr>(width) <= memory_.size() &&
               addr + static_cast<Addr>(width) >= addr;
    }
    Word
    loadWord(Addr addr) const
    {
        Word v;
        std::memcpy(&v, memory_.data() + addr, 4);
        return v;
    }
    void
    storeWord(Addr addr, Word v)
    {
        std::memcpy(memory_.data() + addr, &v, 4);
    }
    double
    loadDouble(Addr addr) const
    {
        double v;
        std::memcpy(&v, memory_.data() + addr, 8);
        return v;
    }
    void
    storeDouble(Addr addr, double v)
    {
        std::memcpy(memory_.data() + addr, &v, 8);
    }

    Addr memorySize() const
    {
        return static_cast<Addr>(memory_.size());
    }

    // -- Program counter / stack pointer ---------------------------------

    std::int32_t pc = 0;

    Word
    sp() const
    {
        return iregs_[core::ArchConvention::stackPointer];
    }
    void
    setSp(Word v)
    {
        iregs_[core::ArchConvention::stackPointer] = v;
    }

    // Trap shadow state (Section 4.3).
    std::int32_t epc = 0;
    UWord epsw = 0;

    // -- Context switching (Section 4.2) ---------------------------------

    /** Save in the format selected by the PSW format flag. */
    ProcessContext saveContext() const;

    /** Restore a context saved by saveContext(). */
    void restoreContext(const ProcessContext &ctx);

  private:
    // Pointers, not references: rebind() retargets them in place so
    // an arena-pooled state can serve successive (program, config)
    // pairs without reconstruction.
    const isa::Program *prog_;
    const SimConfig *cfg_;

    std::vector<Word> iregs_;
    std::vector<double> fregs_;
    core::RegisterMappingTable imap_;
    core::RegisterMappingTable fmap_;
    core::ProcessorStatusWord psw_;
    std::vector<std::uint8_t> memory_;
};

} // namespace rcsim::sim

#endif // RCSIM_SIM_MACHINE_STATE_HH
