#include "sim/simulator.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/predecode.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rcsim::sim
{

using isa::Instruction;
using isa::Opcode;
using isa::OpcodeInfo;
using isa::RegClass;

const char *
toString(StopReason reason)
{
    switch (reason) {
      case StopReason::Halted:
        return "halted";
      case StopReason::Error:
        return "error";
      case StopReason::CycleLimit:
        return "cycle-limit";
      case StopReason::Deadline:
        return "deadline";
    }
    return "unknown";
}

std::string
CommitEffect::toString() const
{
    std::string where;
    switch (kind) {
      case Kind::IntWrite:
        where = "ireg[" + std::to_string(loc) + "]";
        break;
      case Kind::FpWrite:
        where = "freg[" + std::to_string(loc) + "]";
        break;
      case Kind::StoreWord:
        where = "mem4[" + std::to_string(addr) + "]";
        break;
      case Kind::StoreDouble:
        where = "mem8[" + std::to_string(addr) + "]";
        break;
    }
    // Appends, not one operator+ chain: GCC 12's -Wrestrict
    // false-positives on the chained temporary.
    char hex[17];
    std::snprintf(hex, sizeof hex, "%llx",
                  static_cast<unsigned long long>(bits));
    std::string s = "c";
    s += std::to_string(cycle);
    s += " pc";
    s += std::to_string(pc);
    s += ": ";
    s += where;
    s += " <- 0x";
    s += hex;
    return s;
}

namespace
{

/** RCSIM_GENERIC_SIM: unset, empty or "0" means off. */
bool
genericSimRequested()
{
    const char *e = std::getenv("RCSIM_GENERIC_SIM");
    return e != nullptr && *e != '\0' &&
           !(e[0] == '0' && e[1] == '\0');
}

} // namespace

Simulator::Simulator(const isa::Program &prog, const SimConfig &cfg)
    : Simulator(prog, cfg, nullptr)
{
}

Simulator::Simulator(const isa::Program &prog, const SimConfig &cfg,
                     std::shared_ptr<const Predecoded> predecoded)
    : prog_(&prog), cfg_(cfg), state_(prog, cfg_)
{
    configure(std::move(predecoded));
}

void
Simulator::rebind(const isa::Program &prog, const SimConfig &cfg,
                  std::shared_ptr<const Predecoded> predecoded)
{
    prog_ = &prog;
    cfg_ = cfg;
    // state_ keeps referring to the member cfg_, never the caller's.
    state_.rebind(prog, cfg_);
    probe_ = nullptr; // fresh-simulator semantics: no probe attached
    configure(std::move(predecoded));
}

void
Simulator::configure(std::shared_ptr<const Predecoded> predecoded)
{
    if (cfg_.rc.enabled && !cfg_.rc.splitMaps &&
        cfg_.rc.model != core::RcModel::NoReset)
        fatal("unified maps require the no-reset model");
    pd_ = std::move(predecoded);
    rcEnabled_ = cfg_.rc.enabled;
    useGeneric_ = cfg_.forceGeneric || genericSimRequested();
    if (!useGeneric_) {
        if (!pd_)
            pd_ = std::make_shared<const Predecoded>(
                Predecoded::build(*prog_, cfg_));
        if (!pd_->valid)
            useGeneric_ = true; // checked-path fallback
    }
    reset();
}

void
Simulator::invalidatePredecode()
{
    if (useGeneric_)
        return; // the generic loop reads prog_ directly
    Predecoded fresh = Predecoded::build(*prog_, cfg_);
    if (!fresh.valid) {
        useGeneric_ = true;
        pd_.reset();
        return;
    }
    pd_ = std::make_shared<const Predecoded>(std::move(fresh));
}

void
Simulator::reset()
{
    state_.reset();
    readyInt_.assign(cfg_.rc.total(RegClass::Int), 0);
    readyFp_.assign(cfg_.rc.total(RegClass::Fp), 0);
    cycle_ = 0;
    nextFetchCycle_ = 0;
    instructions_ = 0;
    halted_ = false;
    cycleLimitHit_ = false;
    deadlineHit_ = false;
    error_.clear();
    counters_.clear();
    traceOn_ = trace::on();
    pollCancel_ = cfg_.cancel != nullptr;
    nextInterrupt_ = 0;
    trace_.clear();
    traceLeft_ = cfg_.traceLimit;
    if (traceLeft_ > 0)
        trace_.reserve(
            static_cast<std::size_t>(std::min<Count>(traceLeft_,
                                                     65536)) *
            48);
    for (Count &c : originDyn_)
        c = 0;
    for (int c = 0; c < isa::numRegClasses; ++c)
        dirtyMap_[c].assign(
            cfg_.rc.core(static_cast<RegClass>(c)), 0);
}

void
Simulator::enterTrap(std::int32_t return_pc)
{
    if (cfg_.trapVector < 0) {
        fail("trap taken but no trap vector configured");
        return;
    }
    state_.epc = return_pc;
    state_.epsw = state_.psw().bits;
    // Traps bypass the register map so handlers touch the core
    // registers directly (Section 4.3).
    state_.psw().setMapEnable(false);
    state_.pc = cfg_.trapVector;
    counters_.add(SimCounter::Traps);
    if (traceOn_)
        trace::instant("trap", "sim", "return_pc",
                       static_cast<std::uint64_t>(return_pc));
}

SimResult
Simulator::run()
{
    reset();
    trace::Span span("sim.run", "sim");
    step(cfg_.maxCycles);
    if (!halted_ && error_.empty()) {
        cycleLimitHit_ = true;
        fail("cycle limit exceeded");
    }
    return result();
}

bool
Simulator::step(Cycle budget)
{
    Cycle end = cycle_ + budget;
    while (!halted_ && cycle_ < end) {
        if (useGeneric_)
            issueCycle();
        else
            stepFast(end);
    }
    return halted_;
}

SimResult
Simulator::result() const
{
    SimResult r;
    r.ok = halted_ && error_.empty();
    r.reason = r.ok          ? StopReason::Halted
               : deadlineHit_ ? StopReason::Deadline
               : cycleLimitHit_ ? StopReason::CycleLimit
                                : StopReason::Error;
    r.error = error_;
    r.cycles = cycle_;
    r.instructions = instructions_;
    counters_.exportTo(r.stats);
    static const char *origin_names[6] = {
        "dyn_normal", "dyn_spill_load", "dyn_spill_store",
        "dyn_connect", "dyn_save_restore", "dyn_glue"};
    for (int i = 0; i < 6; ++i)
        r.stats.set(origin_names[i], originDyn_[i]);
    return r;
}

void
Simulator::traceWindow()
{
    trace::counter("sim.progress", "instructions", instructions_,
                   "connects", counters_.get(SimCounter::Connects));
    trace::counter("sim.stalls", "src",
                   counters_.get(SimCounter::StallSrc), "dest_busy",
                   counters_.get(SimCounter::StallDestBusy),
                   "map_update",
                   counters_.get(SimCounter::StallMapUpdate),
                   "mem_channel",
                   counters_.get(SimCounter::StallMemChannel));
}

bool
Simulator::cycleWindow()
{
    if ((traceOn_ | pollCancel_) &&
        (cycle_ & (traceWindowCycles - 1)) == 0) {
        if (traceOn_)
            traceWindow();
        if (pollCancel_ &&
            cfg_.cancel->load(std::memory_order_relaxed)) {
            deadlineHit_ = true;
            fail("wall-clock deadline exceeded");
            return false;
        }
    }
    return true;
}

void
Simulator::issueCycle()
{
    if (!cycleWindow())
        return;

    if (probe_)
        probe_->onCycle(*this, cycle_);

    issueCycleTail();
}

void
Simulator::issueCycleTail()
{
    // External interrupts are accepted at cycle boundaries.
    if (nextInterrupt_ < cfg_.interruptCycles.size() &&
        cfg_.interruptCycles[nextInterrupt_] <= cycle_) {
        ++nextInterrupt_;
        enterTrap(state_.pc);
        nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
        ++cycle_;
        return;
    }

    if (cycle_ < nextFetchCycle_) {
        counters_.add(SimCounter::CyclesRedirect);
        ++cycle_;
        return;
    }

    int slots = cfg_.machine.issueWidth;
    int mem = cfg_.machine.memChannels;
    bool any_dirty = false;
    const Cycle dirty_stamp = cycle_ + 1;

    int issued = 0;
    while (slots > 0 && !halted_) {
        if (state_.pc < 0 ||
            state_.pc >= static_cast<std::int32_t>(prog_->code.size())) {
            fail("program counter out of range");
            break;
        }
        const Instruction &ins = prog_->code[state_.pc];
        const OpcodeInfo &info = ins.info();
        bool rc_on = cfg_.rc.enabled && state_.psw().mapEnable();

        // ---- One-cycle connects: stall consumers of map entries
        // updated earlier this same cycle (Section 2.4). ----
        if (any_dirty && rc_on && !info.isConnect) {
            bool dirty = false;
            for (int k = 0; k < info.numSrcs && !dirty; ++k)
                if (dirtyMap_[static_cast<int>(ins.src[k].cls)]
                             [ins.src[k].idx] == dirty_stamp)
                    dirty = true;
            if (!dirty && info.hasDst &&
                dirtyMap_[static_cast<int>(ins.dst.cls)]
                         [ins.dst.idx] == dirty_stamp)
                dirty = true;
            if (dirty) {
                counters_.add(SimCounter::StallMapUpdate);
                break;
            }
        }

        // ---- Operand resolution through the mapping table. ----
        int sphys[2] = {0, 0};
        bool resolved = true;
        for (int k = 0; k < info.numSrcs; ++k) {
            const isa::Reg &r = ins.src[k];
            int limit = rc_on ? state_.map(r.cls).size()
                              : cfg_.rc.total(r.cls);
            if (r.idx >= limit) {
                fail("register operand out of range");
                resolved = false;
                break;
            }
            sphys[k] = state_.resolveRead(r);
        }
        if (!resolved)
            break;
        int dphys = -1;
        if (info.hasDst) {
            const isa::Reg &r = ins.dst;
            int limit = rc_on ? state_.map(r.cls).size()
                              : cfg_.rc.total(r.cls);
            if (r.idx >= limit) {
                fail("destination register out of range");
                break;
            }
            dphys = state_.resolveWrite(r);
        }

        // ---- Register interlocks (CRAY-1 style). ----
        bool stalled = false;
        for (int k = 0; k < info.numSrcs; ++k)
            if (readyOf(ins.src[k].cls, sphys[k]) > cycle_) {
                counters_.add(SimCounter::StallSrc);
                stalled = true;
                break;
            }
        if (!stalled && info.hasDst &&
            readyOf(ins.dst.cls, dphys) > cycle_) {
            counters_.add(SimCounter::StallDestBusy);
            stalled = true;
        }
        if (!stalled && info.isConnect &&
            !cfg_.fetchAfterDispatch) {
            // Register fetch before dispatch (Figure 6): connect-use
            // forwards the register *value*, so the source register
            // must be ready.  With fetch after dispatch (Figure 5)
            // only the physical register number is forwarded and the
            // consumer performs its own ready check at register
            // fetch.
            for (int k = 0; k < ins.nconn; ++k)
                if (!ins.conn[k].isDef &&
                    readyOf(ins.connCls, ins.conn[k].phys) > cycle_) {
                    counters_.add(SimCounter::StallSrc);
                    stalled = true;
                    break;
                }
        }
        if (stalled)
            break;

        // ---- Structural hazard: memory channels. ----
        bool uses_mem = info.isMem || ins.op == Opcode::JSR ||
                        ins.op == Opcode::RTS;
        if (uses_mem && mem == 0) {
            counters_.add(SimCounter::StallMemChannel);
            break;
        }

        // ---- Issue. ----
        if (traceLeft_ > 0) {
            --traceLeft_;
            char head[32];
            int n = std::snprintf(
                head, sizeof head, "%llu  %d: ",
                static_cast<unsigned long long>(cycle_), state_.pc);
            trace_.append(head, static_cast<std::size_t>(n));
            trace_ += ins.toString();
            trace_ += '\n';
        }
        ++instructions_;
        originDyn_[static_cast<int>(ins.origin)] += 1;
        ++issued;
        --slots;
        if (uses_mem)
            --mem;
        if (info.isConnect &&
            cfg_.machine.lat.connectLatency >= 1) {
            for (int k = 0; k < ins.nconn; ++k) {
                dirtyMap_[static_cast<int>(ins.connCls)]
                         [ins.conn[k].mapIdx] = dirty_stamp;
                any_dirty = true;
            }
        }

        bool continue_group = execute(ins, info, sphys, dphys, rc_on);
        if (!continue_group)
            break;
    }

    if (issued == 0)
        counters_.add(SimCounter::CyclesStalled);
    counters_.addIssued(issued);
    ++cycle_;
}

bool
Simulator::execute(const Instruction &ins, const OpcodeInfo &info,
                   const int sphys[2], int dphys, bool rc_on)
{
    // Operands were resolved once in issueCycle(); read the physical
    // registers directly instead of walking the map again.
    auto sval = [&](int k) { return state_.readInt(sphys[k]); };
    auto fval = [&](int k) { return state_.readFp(sphys[k]); };
    auto uw = [](Word w) { return static_cast<UWord>(w); };

    int latency = cfg_.machine.lat.latencyOf(info.latClass);

    auto write_int = [&](Word v) {
        state_.writeInt(dphys, v);
        readyOf(RegClass::Int, dphys) = cycle_ + latency;
        if (probe_)
            probe_->onCommit({CommitEffect::Kind::IntWrite, cycle_,
                              state_.pc, dphys, 0,
                              static_cast<std::uint64_t>(
                                  static_cast<UWord>(v))});
    };
    auto write_fp = [&](double v) {
        state_.writeFp(dphys, v);
        readyOf(RegClass::Fp, dphys) = cycle_ + latency;
        if (probe_)
            probe_->onCommit({CommitEffect::Kind::FpWrite, cycle_,
                              state_.pc, dphys, 0,
                              std::bit_cast<std::uint64_t>(v)});
    };
    auto finish_write = [&]() {
        if (rc_on)
            state_.map(ins.dst.cls).applyWriteSideEffect(
                ins.dst.idx, cfg_.rc.model);
    };

    auto mem_addr = [&](int base_src) {
        return static_cast<Addr>(uw(sval(base_src)) + uw(ins.imm));
    };

    auto branch = [&](bool taken) {
        if (taken) {
            state_.pc = ins.target;
            counters_.add(SimCounter::TakenBranches);
        } else {
            ++state_.pc;
        }
        if (taken != ins.predictTaken) {
            counters_.add(SimCounter::Mispredicts);
            nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
            return false;
        }
        return !taken; // correctly-predicted taken still ends fetch
    };

    switch (ins.op) {
      case Opcode::NOP:
        ++state_.pc;
        return true;
      case Opcode::HALT:
        halted_ = true;
        return false;

      case Opcode::ADD:
        write_int(static_cast<Word>(uw(sval(0)) + uw(sval(1))));
        break;
      case Opcode::SUB:
        write_int(static_cast<Word>(uw(sval(0)) - uw(sval(1))));
        break;
      case Opcode::AND:
        write_int(sval(0) & sval(1));
        break;
      case Opcode::OR:
        write_int(sval(0) | sval(1));
        break;
      case Opcode::XOR:
        write_int(sval(0) ^ sval(1));
        break;
      case Opcode::NOR:
        write_int(~(sval(0) | sval(1)));
        break;
      case Opcode::SLL:
        write_int(static_cast<Word>(uw(sval(0)) << (sval(1) & 31)));
        break;
      case Opcode::SRL:
        write_int(static_cast<Word>(uw(sval(0)) >> (sval(1) & 31)));
        break;
      case Opcode::SRA:
        write_int(sval(0) >> (sval(1) & 31));
        break;
      case Opcode::SLT:
        write_int(sval(0) < sval(1));
        break;
      case Opcode::SLTU:
        write_int(uw(sval(0)) < uw(sval(1)));
        break;

      case Opcode::ADDI:
        write_int(static_cast<Word>(uw(sval(0)) + uw(ins.imm)));
        break;
      case Opcode::ANDI:
        write_int(sval(0) & ins.imm);
        break;
      case Opcode::ORI:
        write_int(sval(0) | ins.imm);
        break;
      case Opcode::XORI:
        write_int(sval(0) ^ ins.imm);
        break;
      case Opcode::SLLI:
        write_int(static_cast<Word>(uw(sval(0)) << (ins.imm & 31)));
        break;
      case Opcode::SRLI:
        write_int(static_cast<Word>(uw(sval(0)) >> (ins.imm & 31)));
        break;
      case Opcode::SRAI:
        write_int(sval(0) >> (ins.imm & 31));
        break;
      case Opcode::SLTI:
        write_int(sval(0) < ins.imm);
        break;
      case Opcode::LI:
        write_int(ins.imm);
        break;
      case Opcode::LUI:
        write_int(static_cast<Word>(uw(ins.imm) << 16));
        break;
      case Opcode::MOV:
        write_int(sval(0));
        break;

      case Opcode::MUL:
        write_int(static_cast<Word>(uw(sval(0)) * uw(sval(1))));
        break;
      case Opcode::DIV:
        if (sval(1) == 0) {
            fail("integer division by zero");
            return false;
        }
        write_int(sval(0) / sval(1));
        break;
      case Opcode::REM:
        if (sval(1) == 0) {
            fail("integer remainder by zero");
            return false;
        }
        write_int(sval(0) % sval(1));
        break;

      case Opcode::FADD:
        write_fp(fval(0) + fval(1));
        break;
      case Opcode::FSUB:
        write_fp(fval(0) - fval(1));
        break;
      case Opcode::FNEG:
        write_fp(-fval(0));
        break;
      case Opcode::FABS:
        write_fp(std::fabs(fval(0)));
        break;
      case Opcode::FMOV:
        write_fp(fval(0));
        break;
      case Opcode::FMIN:
        write_fp(std::fmin(fval(0), fval(1)));
        break;
      case Opcode::FMAX:
        write_fp(std::fmax(fval(0), fval(1)));
        break;
      case Opcode::FCMP_LT:
        write_int(fval(0) < fval(1));
        break;
      case Opcode::FCMP_LE:
        write_int(fval(0) <= fval(1));
        break;
      case Opcode::FCMP_EQ:
        write_int(fval(0) == fval(1));
        break;
      case Opcode::CVT_IF:
        write_fp(static_cast<double>(sval(0)));
        break;
      case Opcode::CVT_FI:
        write_int(static_cast<Word>(
            static_cast<std::int64_t>(fval(0))));
        break;
      case Opcode::FMUL:
        write_fp(fval(0) * fval(1));
        break;
      case Opcode::FDIV:
        write_fp(fval(0) / fval(1));
        break;

      case Opcode::LW: {
        Addr a = mem_addr(0);
        if (!state_.validAddr(a, 4)) {
            fail("load out of bounds");
            return false;
        }
        counters_.add(SimCounter::Loads);
        write_int(state_.loadWord(a));
        break;
      }
      case Opcode::LF: {
        Addr a = mem_addr(0);
        if (!state_.validAddr(a, 8)) {
            fail("load out of bounds");
            return false;
        }
        counters_.add(SimCounter::Loads);
        write_fp(state_.loadDouble(a));
        break;
      }
      case Opcode::SW: {
        Addr a = mem_addr(1);
        if (!state_.validAddr(a, 4)) {
            fail("store out of bounds");
            return false;
        }
        counters_.add(SimCounter::Stores);
        Word v = sval(0);
        state_.storeWord(a, v);
        if (probe_)
            probe_->onCommit({CommitEffect::Kind::StoreWord, cycle_,
                              state_.pc, 0, a,
                              static_cast<std::uint64_t>(
                                  static_cast<UWord>(v))});
        ++state_.pc;
        return true;
      }
      case Opcode::SF: {
        Addr a = mem_addr(1);
        if (!state_.validAddr(a, 8)) {
            fail("store out of bounds");
            return false;
        }
        counters_.add(SimCounter::Stores);
        double v = state_.readFp(sphys[0]);
        state_.storeDouble(a, v);
        if (probe_)
            probe_->onCommit({CommitEffect::Kind::StoreDouble, cycle_,
                              state_.pc, 0, a,
                              std::bit_cast<std::uint64_t>(v)});
        ++state_.pc;
        return true;
      }

      case Opcode::BEQ:
        return branch(sval(0) == sval(1));
      case Opcode::BNE:
        return branch(sval(0) != sval(1));
      case Opcode::BLT:
        return branch(sval(0) < sval(1));
      case Opcode::BGE:
        return branch(sval(0) >= sval(1));
      case Opcode::BLE:
        return branch(sval(0) <= sval(1));
      case Opcode::BGT:
        return branch(sval(0) > sval(1));

      case Opcode::J:
        state_.pc = ins.target;
        return false;

      case Opcode::JSR: {
        Word sp = state_.sp() - 4;
        if (!state_.validAddr(static_cast<Addr>(sp), 4)) {
            fail("stack overflow on jsr");
            return false;
        }
        state_.storeWord(static_cast<Addr>(sp), state_.pc + 1);
        state_.setSp(sp);
        readyOf(RegClass::Int,
                core::ArchConvention::stackPointer) = cycle_ + 1;
        state_.pc = ins.target;
        if (cfg_.rc.enabled) {
            state_.resetMaps(); // Section 4.1
            if (traceOn_)
                trace::instant("map_reset", "sim", "pc",
                               static_cast<std::uint64_t>(state_.pc));
        }
        counters_.add(SimCounter::Calls);
        return false;
      }
      case Opcode::RTS: {
        Word sp = state_.sp();
        if (!state_.validAddr(static_cast<Addr>(sp), 4)) {
            fail("stack underflow on rts");
            return false;
        }
        state_.pc = state_.loadWord(static_cast<Addr>(sp));
        state_.setSp(sp + 4);
        readyOf(RegClass::Int,
                core::ArchConvention::stackPointer) = cycle_ + 1;
        if (cfg_.rc.enabled) {
            state_.resetMaps(); // Section 4.1
            if (traceOn_)
                trace::instant("map_reset", "sim", "pc",
                               static_cast<std::uint64_t>(state_.pc));
        }
        return false;
      }

      case Opcode::TRAP:
        enterTrap(state_.pc + 1);
        nextFetchCycle_ = cycle_ + 1 + cfg_.redirectPenalty();
        return false;
      case Opcode::RFE:
        state_.psw().bits = state_.epsw;
        state_.pc = state_.epc;
        return false;
      case Opcode::MFPSW:
        write_int(static_cast<Word>(state_.psw().bits));
        break;
      case Opcode::MTPSW:
        state_.psw().bits = static_cast<UWord>(sval(0));
        ++state_.pc;
        return false; // mapping semantics may have changed

      case Opcode::CONNECT_USE:
      case Opcode::CONNECT_DEF:
      case Opcode::CONNECT_UU:
      case Opcode::CONNECT_DU:
      case Opcode::CONNECT_DD: {
        if (!cfg_.rc.enabled) {
            fail("connect instruction without RC support");
            return false;
        }
        counters_.add(SimCounter::Connects);
        // Adjacent to the counter add so the fuzz cross-check can
        // assert instants == stats even on later error paths.
        if (traceOn_)
            trace::instant("connect", "sim", "pc",
                           static_cast<std::uint64_t>(state_.pc));
        core::RegisterMappingTable &map = state_.map(ins.connCls);
        for (int k = 0; k < ins.nconn; ++k) {
            if (ins.conn[k].phys >= map.physRegs()) {
                fail("connect to bad physical register");
                return false;
            }
            if (ins.conn[k].mapIdx >= map.size()) {
                fail("connect to bad map index");
                return false;
            }
            if (ins.conn[k].isDef)
                map.connectDef(ins.conn[k].mapIdx,
                               ins.conn[k].phys);
            else
                map.connectUse(ins.conn[k].mapIdx,
                               ins.conn[k].phys);
        }
        ++state_.pc;
        return true;
      }

      default:
        fail("unimplemented opcode");
        return false;
    }

    // Common epilogue for register-writing straight-line ops.
    finish_write();
    ++state_.pc;
    return true;
}

} // namespace rcsim::sim
