/**
 * @file
 * Figure 9: percentage of static code-size increase after register
 * allocation for a 4-issue processor with 2-cycle loads and varying
 * core registers.  The without-RC increase is spill plus save/restore
 * code; the with-RC increase separates connect instructions from the
 * extended-register save/restore around calls (the black portion of
 * the paper's bars).  Baseline size: the same program compiled with
 * unlimited registers.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Figure 9",
           "Static code size increase (%) over the unlimited-register "
           "compile, 4-issue, 2-cycle loads.\nbase = without-RC "
           "total; rc = with-RC total; rcSR = the with-RC part due "
           "to extended-register\nsave/restore around calls (the "
           "black bars).");

    harness::Experiment exp;
    const std::vector<int> int_cores{8, 16, 24, 32, 64};
    const std::vector<int> fp_cores{16, 32, 48, 64, 128};

    TextTable t;
    {
        std::vector<std::string> hdr{"benchmark"};
        for (std::size_t i = 0; i < int_cores.size(); ++i) {
            std::string label = std::to_string(int_cores[i]) + "/" +
                                std::to_string(fp_cores[i]);
            hdr.push_back("base" + label);
            hdr.push_back("rc" + label);
            hdr.push_back("rcSR" + label);
        }
        t.header(std::move(hdr));
    }

    for (const auto &w : workloads::allWorkloads()) {
        harness::RunOutcome unl = exp.measured(w, unlimited(4));
        double base_size =
            static_cast<double>(unl.compiled.staticSize);

        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < int_cores.size(); ++i) {
            int core = w.isFp ? fp_cores[i] : int_cores[i];
            harness::RunOutcome rb =
                exp.measured(w, withoutRc(w, core, 4));
            harness::RunOutcome rr =
                exp.measured(w, withRc(w, core, 4));
            double pb = 100.0 *
                        (static_cast<double>(rb.compiled.staticSize) -
                         base_size) /
                        base_size;
            double pr = 100.0 *
                        (static_cast<double>(rr.compiled.staticSize) -
                         base_size) /
                        base_size;
            double psr =
                100.0 *
                static_cast<double>(rr.compiled.saveRestoreOps) /
                base_size;
            row.push_back(TextTable::num(pb, 1));
            row.push_back(TextTable::num(pr, 1));
            row.push_back(TextTable::num(psr, 1));
        }
        t.row(std::move(row));
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nExpected shape (paper): small (<~10%%) growth at the "
        "large core sizes; expansion sets in\nas cores shrink; the "
        "with-RC model grows more than the without-RC model (extra "
        "connects\nand extended save/restore) yet achieves higher "
        "performance (Figure 8).\n");
    return 0;
}
