/**
 * @file
 * Ablation C: separate read/write maps versus a unified map per entry
 * (Section 2.1 claims the split maps "allow more efficient use of a
 * limited number of register mapping table entries", more important
 * for small m).  Both variants run under the no-reset model (the
 * automatic reset models are defined in terms of split maps).
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Ablation C: split vs unified read/write maps "
           "(Section 2.1)",
           "With-RC speedup and static connect count, no-reset model, "
           "4-issue, 2-cycle loads,\n8/16 core registers.");

    harness::Experiment exp;

    TextTable t;
    t.header({"benchmark", "split", "unified", "conns-split",
              "conns-unified"});
    std::vector<std::vector<double>> cols(2);
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w, 8, 16);
        harness::CompileOptions split = withRc(w, core, 4);
        split.rc.model = core::RcModel::NoReset;
        harness::CompileOptions unified = split;
        unified.rc.splitMaps = false;

        double ss = exp.speedup(w, split);
        double su = exp.speedup(w, unified);
        harness::RunOutcome rs = exp.measured(w, split);
        harness::RunOutcome ru = exp.measured(w, unified);
        cols[0].push_back(ss);
        cols[1].push_back(su);
        t.row({w.name, TextTable::num(ss), TextTable::num(su),
               std::to_string(rs.compiled.connectOps),
               std::to_string(ru.compiled.connectOps)});
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nWith a unified map, one entry cannot read one register "
        "while writing another, so the\ninserter burns extra "
        "connects whenever reads and writes contend for the same "
        "entries —\nthe Section 2.1 flexibility argument, "
        "quantified.\n");
    return 0;
}
