/**
 * @file
 * Table 1: the instruction latencies assumed by every experiment,
 * printed from the live LatencyConfig so the configuration cannot
 * drift from what the paper specifies.
 */

#include "bench/bench_common.hh"

#include "isa/opcode.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;

    banner("Table 1", "Instruction latencies (paper Table 1).");

    isa::LatencyConfig lat2;
    lat2.loadLatency = 2;
    isa::LatencyConfig lat4;
    lat4.loadLatency = 4;

    TextTable t;
    t.header({"instruction class", "latency"});
    t.row({"INT ALU",
           std::to_string(lat2.latencyOf(isa::Opcode::ADD))});
    t.row({"INT multiply",
           std::to_string(lat2.latencyOf(isa::Opcode::MUL))});
    t.row({"INT divide",
           std::to_string(lat2.latencyOf(isa::Opcode::DIV))});
    t.row({"branch",
           std::to_string(lat2.latencyOf(isa::Opcode::BEQ))});
    t.row({"memory load",
           std::to_string(lat2.latencyOf(isa::Opcode::LW)) + " or " +
               std::to_string(lat4.latencyOf(isa::Opcode::LW))});
    t.row({"memory store",
           std::to_string(lat2.latencyOf(isa::Opcode::SW))});
    t.row({"FP ALU",
           std::to_string(lat2.latencyOf(isa::Opcode::FADD))});
    t.row({"FP conversion",
           std::to_string(lat2.latencyOf(isa::Opcode::CVT_IF))});
    t.row({"FP multiply",
           std::to_string(lat2.latencyOf(isa::Opcode::FMUL))});
    t.row({"FP divide",
           std::to_string(lat2.latencyOf(isa::Opcode::FDIV))});
    t.row({"connect (Section 2.4)",
           std::to_string(lat2.latencyOf(isa::Opcode::CONNECT_USE)) +
               " (or 1, Figure 12)"});
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
