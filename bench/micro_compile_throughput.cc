/**
 * @file
 * micro_compile_throughput — the tracked compile-performance
 * benchmark for the staged pipeline.
 *
 * Measures three things and emits them into a machine-readable JSON
 * file (BENCH_compile_throughput.json) so the compile-cost
 * trajectory can be compared across PRs:
 *
 *  1. Cold compile: one full staged compile (frontend + backend)
 *     with per-phase wall-clock split.
 *
 *  2. Warm-cache compile: the same configuration recompiled against
 *     the memoized frontend; only the backend runs.  The program is
 *     checked bit-identical to the cold one.
 *
 *  3. Fig8-style sweep: one workload across >= 6 core-size points
 *     (RC enabled, 4-issue), compiled through the staged pipeline
 *     (frontend runs exactly once — asserted via the cache stats)
 *     and through the frozen seed monolith
 *     (pipeline::compileReference, frontend per point).  Every
 *     staged program must be bit-identical to its reference
 *     counterpart; the wall-clock ratio is the headline speedup.
 *
 * Options:
 *   --json FILE       output file (default
 *                     BENCH_compile_throughput.json, "-" = stdout)
 *   --workload NAME   sweep workload (default espresso)
 *   --cores A,B,..    core-size points (default 8,12,16,24,32,48,64)
 *   --repeat N        timing repetitions, best-of (default 3)
 *   --smoke           tiny smoke run (cmp, cores 8,16,24, 1 rep)
 *                     used by the ctest target
 *   --trace FILE      write a Chrome trace_event JSON trace of the
 *                     bench (RCSIM_TRACE env equivalent)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "pipeline/compile.hh"
#include "pipeline/reference.hh"
#include "trace/trace.hh"

namespace
{

using namespace rcsim;
using Clock = std::chrono::steady_clock;

double
secsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

std::vector<int>
splitInts(const std::string &spec)
{
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string tok = comma == std::string::npos
                              ? spec.substr(pos)
                              : spec.substr(pos, comma - pos);
        if (!tok.empty())
            out.push_back(std::atoi(tok.c_str()));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcsim::bench;
    setQuiet(true);

    std::string json_file = "BENCH_compile_throughput.json";
    std::string workload_name = "espresso";
    std::vector<int> cores = {8, 12, 16, 24, 32, 48, 64};
    int repeat = 3;
    std::string trace_file;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (a == "--json" && next())
            json_file = argv[i];
        else if (a == "--workload" && next())
            workload_name = argv[i];
        else if (a == "--cores" && next())
            cores = splitInts(argv[i]);
        else if (a == "--repeat" && next())
            repeat = std::max(1, std::atoi(argv[i]));
        else if (a == "--trace" && next())
            trace_file = argv[i];
        else if (a == "--smoke") {
            workload_name = "cmp";
            cores = {8, 16, 24};
            repeat = 1;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return 2;
        }
    }

    const workloads::Workload *w =
        workloads::findWorkload(workload_name);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    trace::ScopedDump tracer(
        trace::resolveTracePath(trace_file,
                                "bench_compile_trace.json"),
        std::string());

    // ---- 1 + 2. Cold vs warm-cache single compile. ----
    harness::CompileOptions opts = withRc(*w, cores[0], 4);

    double cold_secs = 1e9, frontend_secs = 0, backend_secs = 0;
    double warm_secs = 1e9;
    pipeline::CompiledProgram cold_cp, warm_cp;
    for (int r = 0; r < repeat; ++r) {
        pipeline::frontendCache().clear();
        pipeline::PassReport cold_report;
        Clock::time_point t0 = Clock::now();
        cold_cp = pipeline::compile(*w, opts, &cold_report);
        double s = secsSince(t0);
        if (s < cold_secs) {
            cold_secs = s;
            frontend_secs = cold_report.frontendSeconds();
            backend_secs = cold_report.backendSeconds();
        }

        pipeline::PassReport warm_report;
        t0 = Clock::now();
        warm_cp = pipeline::compile(*w, opts, &warm_report);
        s = secsSince(t0);
        warm_secs = std::min(warm_secs, s);
        if (!warm_report.frontendCached) {
            std::fprintf(stderr,
                         "warm compile missed the frontend cache\n");
            return 1;
        }
    }
    bool warm_identical =
        pipeline::compiledIdentical(cold_cp, warm_cp);
    std::printf("%-10s cold %8.3f ms (frontend %.3f, backend %.3f), "
                "warm %8.3f ms (%.2fx), programs %s\n",
                w->name.c_str(), cold_secs * 1e3,
                frontend_secs * 1e3, backend_secs * 1e3,
                warm_secs * 1e3, cold_secs / warm_secs,
                warm_identical ? "identical" : "DIVERGED");
    if (!warm_identical)
        return 1;

    // ---- 3. Fig8-style sweep: staged vs seed monolith. ----
    std::vector<harness::CompileOptions> points;
    for (int core : cores)
        points.push_back(withRc(*w, core, 4));

    double staged_secs = 1e9, reference_secs = 1e9;
    std::uint64_t frontend_runs = 0;
    bool sweep_identical = true;
    for (int r = 0; r < repeat; ++r) {
        pipeline::frontendCache().clear();
        auto stats0 = pipeline::frontendCache().stats();
        std::vector<pipeline::CompiledProgram> staged;
        Clock::time_point t0 = Clock::now();
        for (const harness::CompileOptions &o : points)
            staged.push_back(pipeline::compile(*w, o));
        double s = secsSince(t0);
        auto stats1 = pipeline::frontendCache().stats();
        if (s < staged_secs) {
            staged_secs = s;
            frontend_runs = stats1.misses - stats0.misses;
        }

        std::vector<pipeline::CompiledProgram> reference;
        t0 = Clock::now();
        for (const harness::CompileOptions &o : points)
            reference.push_back(pipeline::compileReference(*w, o));
        reference_secs = std::min(reference_secs, secsSince(t0));

        for (std::size_t i = 0; i < points.size(); ++i)
            sweep_identical =
                sweep_identical &&
                pipeline::compiledIdentical(staged[i],
                                            reference[i]);
    }
    double sweep_speedup = staged_secs > 0
                               ? reference_secs / staged_secs
                               : 0.0;
    std::printf("sweep: %zu core points, staged %.3f ms "
                "(%llu frontend run%s), seed-monolith %.3f ms, "
                "speedup %.2fx, programs %s\n",
                points.size(), staged_secs * 1e3,
                static_cast<unsigned long long>(frontend_runs),
                frontend_runs == 1 ? "" : "s", reference_secs * 1e3,
                sweep_speedup,
                sweep_identical ? "identical" : "DIVERGED");
    if (!sweep_identical || frontend_runs != 1)
        return 1;

    // ---- JSON report. ----
    char buf[512];
    std::string j = "{\n  \"bench\": \"compile_throughput\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"config\": {\"workload\": \"%s\", \"issue\": 4,"
                  " \"opt\": \"ilp\", \"rc_model\": 3, \"cores\": [",
                  w->name.c_str());
    j += buf;
    for (std::size_t i = 0; i < cores.size(); ++i)
        j += (i ? "," : "") + std::to_string(cores[i]);
    std::snprintf(buf, sizeof buf, "], \"repeat\": %d},\n", repeat);
    j += buf;
    std::snprintf(
        buf, sizeof buf,
        "  \"cold_compile\": {\"secs\": %.6f, \"frontend_secs\": "
        "%.6f, \"backend_secs\": %.6f},\n",
        cold_secs, frontend_secs, backend_secs);
    j += buf;
    std::snprintf(
        buf, sizeof buf,
        "  \"warm_compile\": {\"secs\": %.6f, \"speedup_vs_cold\": "
        "%.2f, \"identical\": %s},\n",
        warm_secs, warm_secs > 0 ? cold_secs / warm_secs : 0.0,
        warm_identical ? "true" : "false");
    j += buf;
    std::snprintf(
        buf, sizeof buf,
        "  \"sweep\": {\"points\": %zu, \"frontend_runs\": %llu, "
        "\"staged_secs\": %.6f, \"reference_secs\": %.6f, "
        "\"speedup\": %.2f, \"identical\": %s}\n",
        points.size(),
        static_cast<unsigned long long>(frontend_runs), staged_secs,
        reference_secs, sweep_speedup,
        sweep_identical ? "true" : "false");
    j += buf;
    j += "}\n";

    if (json_file == "-") {
        std::fputs(j.c_str(), stdout);
    } else {
        std::ofstream out(json_file);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_file.c_str());
            return 1;
        }
        out << j;
        std::printf("wrote %s\n", json_file.c_str());
    }
    return 0;
}
