/**
 * @file
 * Figure 11: same sweep as Figure 10 at 4-cycle load latency, where
 * spill code hurts more and the RC benefit is larger.
 */

#define RCSIM_FIG11 1
#include "bench/fig10_issue_2cyc.cc"

int
main()
{
    return runFigure(4, "Figure 11");
}
