/**
 * @file
 * google-benchmark micro-benchmarks for the infrastructure itself:
 * mapping-table operations, the pipeline simulator's instruction
 * throughput, the IR interpreter and the compilation pipeline.
 */

#include <benchmark/benchmark.h>

#include "core/mapping_table.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

namespace
{

using namespace rcsim;

void
BM_MappingTableConnect(benchmark::State &state)
{
    core::RegisterMappingTable table(16, 256);
    int i = 0;
    for (auto _ : state) {
        table.connectUse(i & 15, (i * 7) & 255);
        table.applyWriteSideEffect(
            i & 15, core::RcModel::WriteResetReadUpdate);
        benchmark::DoNotOptimize(table.readMap(i & 15));
        ++i;
    }
}
BENCHMARK(BM_MappingTableConnect);

void
BM_MappingTableSnapshot(benchmark::State &state)
{
    core::RegisterMappingTable table(
        static_cast<int>(state.range(0)), 256);
    for (auto _ : state) {
        auto snap = table.save();
        table.restore(snap);
        benchmark::DoNotOptimize(snap);
    }
}
BENCHMARK(BM_MappingTableSnapshot)->Arg(8)->Arg(32);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    isa::AsmResult r = isa::assemble(R"(
func main:
  li r1, 100000
  li r2, 0
  li r3, 0
loop:
  addi r2, r2, 3
  xor  r3, r3, r2
  addi r1, r1, -1
  bgt+ r1, r3, done
  j loop
done:
  halt
)");
    // Note: the bgt above compares against r3 and exits almost
    // immediately; rebuild a plain counted loop instead.
    r = isa::assemble(R"(
func main:
  li r1, 100000
  li r2, 0
  li r8, 0
loop:
  addi r2, r2, 3
  addi r1, r1, -1
  bgt+ r1, r8, loop
  halt
)");
    isa::Program p = r.program;
    p.memorySize = 1 << 16;
    sim::SimConfig cfg;
    cfg.machine.issueWidth = 4;
    cfg.rc = core::RcConfig::withRc(16, 16);
    Count instructions = 0;
    for (auto _ : state) {
        sim::Simulator sim(p, cfg);
        sim::SimResult res = sim.run();
        instructions += res.instructions;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void
BM_InterpreterThroughput(benchmark::State &state)
{
    const workloads::Workload *w = workloads::findWorkload("cmp");
    ir::Module m = w->build();
    m.layout();
    Count ops = 0;
    for (auto _ : state) {
        ir::Interpreter interp(m);
        ir::ExecResult res = interp.run();
        ops += res.dynamicOps;
        benchmark::DoNotOptimize(res.retValue);
    }
    state.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void
BM_CompilationPipeline(benchmark::State &state)
{
    setQuiet(true);
    const workloads::Workload *w = workloads::findWorkload("eqn");
    harness::CompileOptions opts;
    opts.level = opt::OptLevel::Ilp;
    opts.rc = harness::rcConfigFor(false, 16);
    opts.machine = harness::Experiment::machineFor(4);
    for (auto _ : state) {
        harness::CompiledProgram cp =
            harness::compileWorkload(*w, opts);
        benchmark::DoNotOptimize(cp.staticSize);
    }
}
BENCHMARK(BM_CompilationPipeline)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
