/**
 * @file
 * Extension: dynamic overhead accounting.  Figure 9 reports *static*
 * code growth; here the simulator attributes every dynamically issued
 * instruction to its provenance, separating the spill traffic the
 * without-RC model executes from the connect and save/restore
 * instructions the with-RC model executes — the instruction-level
 * mechanics behind the Figure 8 performance gap.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Extension: dynamic overhead (per issued instruction)",
           "4-issue, 2-cycle loads, 8/16 core registers.  Percent of "
           "dynamically issued instructions\nthat are spill memory "
           "ops (base) or connects + extended save/restore (rc).");

    struct Sample
    {
        double pct;
        Count total;
    };
    auto measure = [](const workloads::Workload &w,
                      const harness::CompileOptions &o,
                      bool rc) -> Sample {
        harness::CompiledProgram cp =
            harness::compileWorkload(w, o);
        sim::SimConfig sc;
        sc.machine = o.machine;
        sc.rc = o.rc;
        sim::Simulator sim(cp.program, sc);
        sim::SimResult res = sim.run();
        if (!res.ok)
            fatal("simulation failed: ", res.error);
        if (sim.state().loadWord(cp.resultAddr) != cp.golden)
            fatal("verification failed for ", w.name);
        Count overhead =
            rc ? res.stats.get("dyn_connect") +
                     res.stats.get("dyn_save_restore")
               : res.stats.get("dyn_spill_load") +
                     res.stats.get("dyn_spill_store") +
                     res.stats.get("dyn_save_restore");
        return {100.0 * static_cast<double>(overhead) /
                    static_cast<double>(res.instructions),
                res.instructions};
    };

    TextTable t;
    t.header({"benchmark", "base-spill%", "rc-connect%",
              "base-instr", "rc-instr"});
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w, 8, 16);
        Sample sb = measure(w, withoutRc(w, core, 4), false);
        Sample sr = measure(w, withRc(w, core, 4), true);
        t.row({w.name, TextTable::num(sb.pct, 1),
               TextTable::num(sr.pct, 1),
               std::to_string(sb.total), std::to_string(sr.total)});
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nAt these core sizes the with-RC model executes both fewer "
        "overhead instructions (one\nconnect can cover two accesses, "
        "and model 3 makes written extended values readable for\n"
        "free) and cheaper ones: connects are zero-latency and use "
        "no memory channel, while every\nspill op is a latency-"
        "bearing load or store.  Both effects feed the Figure 8 "
        "gap.\n");
    return 0;
}
