/**
 * @file
 * Figure 13: the effect of memory channels versus RC for a 4-issue
 * processor at 2- and 4-cycle load latency with 16/32 core
 * registers.  Columns: without-RC and with-RC at two channels, the
 * additional gain of four channels for the without-RC model, and the
 * unlimited-register two-channel reference.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Figure 13",
           "Speedup, 4-issue, 16/32 core registers: memory channels "
           "(2 vs 4) against RC.\nbase2/base4 = without RC at 2/4 "
           "channels, rc2 = with RC at 2 channels,\nunl2 = unlimited "
           "registers at 2 channels.");

    harness::Experiment exp;

    for (int load_lat : {2, 4}) {
        std::printf("-- %d-cycle load latency --\n", load_lat);
        std::vector<SpeedupCell> cells;
        for (const auto &w : workloads::allWorkloads()) {
            int core = paperCore(w);
            harness::CompileOptions b2 =
                withoutRc(w, core, 4, load_lat);
            b2.machine.memChannels = 2;
            harness::CompileOptions b4 = b2;
            b4.machine.memChannels = 4;
            harness::CompileOptions r2 = withRc(w, core, 4, load_lat);
            r2.machine.memChannels = 2;
            harness::CompileOptions u2 = unlimited(4, load_lat);
            u2.machine.memChannels = 2;
            cells.push_back({&w, b2});
            cells.push_back({&w, b4});
            cells.push_back({&w, r2});
            cells.push_back({&w, u2});
        }
        std::vector<double> s = parallelSpeedups(exp, cells);

        TextTable t;
        t.header({"benchmark", "base2", "base4", "rc2", "unl2"});
        std::vector<std::vector<double>> cols(4);
        std::size_t cell = 0;
        for (const auto &w : workloads::allWorkloads()) {
            std::vector<std::string> row{w.name};
            for (std::size_t k = 0; k < 4; ++k) {
                cols[k].push_back(s[cell]);
                row.push_back(TextTable::num(s[cell]));
                ++cell;
            }
            t.row(std::move(row));
        }
        geomeanRow(t, "geomean", cols);
        std::fputs(t.render().c_str(), stdout);
        std::printf("\n");
    }

    std::printf(
        "Expected shape (paper): adding RC at two channels buys more "
        "than doubling the memory\nchannels without RC — RC removes "
        "spill traffic instead of widening its pipe.\n");
    return 0;
}
