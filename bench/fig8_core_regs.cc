/**
 * @file
 * Figure 8: speedup for a 4-issue processor with 2-cycle load latency
 * and a varying number of core registers, with and without RC
 * support.  Integer benchmarks sweep 8-64 core integer registers;
 * floating-point benchmarks sweep 16-128 core fp registers.  The
 * "unl" column is the unlimited-register speedup (the dotted line of
 * the paper's figure).
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Figure 8",
           "Speedup, 4-issue, 2-cycle loads, varying core registers "
           "(int benchmarks: 8-64 int cores;\nfp benchmarks: 16-128 "
           "fp cores; with-RC total file = 256).  base = without RC, "
           "rc = with RC.");

    harness::Experiment exp;
    const std::vector<int> int_cores{8, 16, 24, 32, 64};
    const std::vector<int> fp_cores{16, 32, 48, 64, 128};

    TextTable t;
    {
        std::vector<std::string> hdr{"benchmark"};
        for (std::size_t i = 0; i < int_cores.size(); ++i) {
            std::string label = std::to_string(int_cores[i]) + "/" +
                                std::to_string(fp_cores[i]);
            hdr.push_back("base" + label);
            hdr.push_back("rc" + label);
        }
        hdr.push_back("unl");
        t.header(std::move(hdr));
    }

    std::vector<SpeedupCell> cells;
    for (const auto &w : workloads::allWorkloads()) {
        for (std::size_t i = 0; i < int_cores.size(); ++i) {
            int core = w.isFp ? fp_cores[i] : int_cores[i];
            cells.push_back({&w, withoutRc(w, core, 4)});
            cells.push_back({&w, withRc(w, core, 4)});
        }
        cells.push_back({&w, unlimited(4)});
    }
    std::vector<double> s = parallelSpeedups(exp, cells);

    std::vector<std::vector<double>> cols(int_cores.size() * 2 + 1);
    std::size_t cell = 0;
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < int_cores.size(); ++i) {
            cols[2 * i].push_back(s[cell]);
            row.push_back(TextTable::num(s[cell]));
            ++cell;
            cols[2 * i + 1].push_back(s[cell]);
            row.push_back(TextTable::num(s[cell]));
            ++cell;
        }
        cols.back().push_back(s[cell]);
        row.push_back(TextTable::num(s[cell]));
        ++cell;
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nExpected shape (paper): both models reach the unlimited "
        "level at the largest cores;\ndegradation appears as cores "
        "shrink and is severe at the smallest size, where the\n"
        "with-RC model stays far above the without-RC model "
        "(headline: with-RC at 16 int cores\nreaches ~90%% of "
        "unlimited).\n");
    return 0;
}
