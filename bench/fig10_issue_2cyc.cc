/**
 * @file
 * Figure 10: speedup for 2-cycle load latency, 16 core integer
 * registers (integer benchmarks) / 32 core fp registers (fp
 * benchmarks) and varying issue rate (2/4/8), with and without RC,
 * plus the unlimited-register reference.
 */

#include "bench/bench_common.hh"

namespace
{

int
runFigure(int load_lat, const char *title)
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner(title,
           std::string("Speedup, ") + std::to_string(load_lat) +
               "-cycle loads, 16 core int registers (int "
               "benchmarks) / 32 core fp registers (fp\n"
               "benchmarks), issue rate 2/4/8.  base = without RC, "
               "rc = with RC, unl = unlimited.");

    harness::Experiment exp;
    const std::vector<int> widths{2, 4, 8};

    TextTable t;
    {
        std::vector<std::string> hdr{"benchmark"};
        for (int wdt : widths) {
            hdr.push_back("base" + std::to_string(wdt));
            hdr.push_back("rc" + std::to_string(wdt));
            hdr.push_back("unl" + std::to_string(wdt));
        }
        t.header(std::move(hdr));
    }

    std::vector<std::vector<double>> cols(widths.size() * 3);
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w);
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < widths.size(); ++i) {
            double sb =
                exp.speedup(w, withoutRc(w, core, widths[i],
                                         load_lat));
            double sr =
                exp.speedup(w, withRc(w, core, widths[i], load_lat));
            double su = exp.speedup(w, unlimited(widths[i], load_lat));
            cols[3 * i].push_back(sb);
            cols[3 * i + 1].push_back(sr);
            cols[3 * i + 2].push_back(su);
            row.push_back(TextTable::num(sb));
            row.push_back(TextTable::num(sr));
            row.push_back(TextTable::num(su));
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nExpected shape (paper): the RC advantage over the "
        "without-RC model grows with the\nissue rate (largest at "
        "8-issue, where spill latency and dependences restrict the\n"
        "schedule most).\n");
    return 0;
}

} // namespace

#ifndef RCSIM_FIG11
int
main()
{
    return runFigure(2, "Figure 10");
}
#endif
