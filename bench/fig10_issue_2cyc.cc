/**
 * @file
 * Figure 10: speedup for 2-cycle load latency, 16 core integer
 * registers (integer benchmarks) / 32 core fp registers (fp
 * benchmarks) and varying issue rate (2/4/8), with and without RC,
 * plus the unlimited-register reference.
 */

#include "bench/bench_common.hh"

namespace
{

int
runFigure(int load_lat, const char *title)
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner(title,
           std::string("Speedup, ") + std::to_string(load_lat) +
               "-cycle loads, 16 core int registers (int "
               "benchmarks) / 32 core fp registers (fp\n"
               "benchmarks), issue rate 2/4/8.  base = without RC, "
               "rc = with RC, unl = unlimited.");

    harness::Experiment exp;
    const std::vector<int> widths{2, 4, 8};

    TextTable t;
    {
        std::vector<std::string> hdr{"benchmark"};
        for (int wdt : widths) {
            hdr.push_back("base" + std::to_string(wdt));
            hdr.push_back("rc" + std::to_string(wdt));
            hdr.push_back("unl" + std::to_string(wdt));
        }
        t.header(std::move(hdr));
    }

    std::vector<SpeedupCell> cells;
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w);
        for (int width : widths) {
            cells.push_back({&w, withoutRc(w, core, width, load_lat)});
            cells.push_back({&w, withRc(w, core, width, load_lat)});
            cells.push_back({&w, unlimited(width, load_lat)});
        }
    }
    std::vector<double> s = parallelSpeedups(exp, cells);

    std::vector<std::vector<double>> cols(widths.size() * 3);
    std::size_t cell = 0;
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < widths.size(); ++i) {
            for (std::size_t k = 0; k < 3; ++k) {
                cols[3 * i + k].push_back(s[cell]);
                row.push_back(TextTable::num(s[cell]));
                ++cell;
            }
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nExpected shape (paper): the RC advantage over the "
        "without-RC model grows with the\nissue rate (largest at "
        "8-issue, where spill latency and dependences restrict the\n"
        "schedule most).\n");
    return 0;
}

} // namespace

#ifndef RCSIM_FIG11
int
main()
{
    return runFigure(2, "Figure 10");
}
#endif
