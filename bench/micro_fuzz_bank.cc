/**
 * @file
 * google-benchmark micro-benchmarks for the differential fuzz bank
 * (src/fuzz): the cost of one full multi-oracle bank run (compile +
 * six simulated members + commit/trace comparison) and of its two
 * building blocks, input generation and compilation.
 *
 * The bank run is the fuzzer's unit of throughput — campaigns are
 * rounds x batch of these — so BM_RunBank is the number that decides
 * how much coverage a CI time budget buys.
 */

#include <benchmark/benchmark.h>

#include "fuzz/bank.hh"
#include "support/logging.hh"

namespace
{

using namespace rcsim;

void
BM_RandomInput(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state) {
        fuzz::FuzzInput in = fuzz::randomInput(seed++);
        benchmark::DoNotOptimize(in.prog.seed);
    }
}
BENCHMARK(BM_RandomInput);

void
BM_CompileInput(benchmark::State &state)
{
    setQuiet(true);
    fuzz::FuzzInput in = fuzz::randomInput(7);
    for (auto _ : state) {
        fuzz::CompiledInput ci = fuzz::compileInput(in);
        benchmark::DoNotOptimize(ci.compiled.golden);
    }
}
BENCHMARK(BM_CompileInput);

void
BM_RunBank(benchmark::State &state)
{
    setQuiet(true);
    fuzz::FuzzInput in =
        fuzz::randomInput(static_cast<std::uint64_t>(state.range(0)));
    sim::SimArena arena;
    fuzz::BankOptions opt;
    opt.arena = &arena;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        fuzz::BankVerdict v = fuzz::runBank(in, opt);
        if (v.status != "ok")
            fatal("bench bank diverged: ", v.pair, " ", v.detail);
        cycles += v.cycles;
    }
    state.counters["ref_cycles"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RunBank)->Arg(1)->Arg(2)->Arg(3);

} // namespace

BENCHMARK_MAIN();
