/**
 * @file
 * Figure 7: speedup for processors with an unlimited number of
 * registers, varying issue rate (1/2/4/8) and memory channels
 * (2/2/2/4).  Baseline: 1-issue, unlimited registers, scalar
 * optimization.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Figure 7",
           "Speedup, unlimited registers, issue rate 1/2/4/8 "
           "(memory channels 2/2/2/4), ILP optimization.\n"
           "Baseline: 1-issue, unlimited registers, scalar "
           "optimization.");

    harness::Experiment exp;
    const std::vector<int> widths{1, 2, 4, 8};

    std::vector<SpeedupCell> cells;
    for (const auto &w : workloads::allWorkloads())
        for (int width : widths)
            cells.push_back({&w, unlimited(width)});
    std::vector<double> s = parallelSpeedups(exp, cells);

    TextTable t;
    t.header({"benchmark", "1-issue", "2-issue", "4-issue",
              "8-issue"});
    std::vector<std::vector<double>> cols(widths.size());
    std::size_t cell = 0;
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < widths.size(); ++i) {
            cols[i].push_back(s[cell]);
            row.push_back(TextTable::num(s[cell]));
            ++cell;
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nExpected shape (paper): speedup grows with issue "
                "rate, sublinearly at 8-issue\n(limited program "
                "parallelism).\n");
    return 0;
}
