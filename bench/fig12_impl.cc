/**
 * @file
 * Figure 12: the four RC implementation scenarios (Section 2.4) for a
 * 4-issue processor with 2-cycle loads and 16/32 core registers:
 *
 *   0cyc        zero-cycle connects in the existing pipeline
 *   0cyc+stage  zero-cycle connects, extra decode stage for the map
 *   1cyc        one-cycle connects (no same-cycle forwarding)
 *   1cyc+stage  one-cycle connects plus the extra stage
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Figure 12",
           "Speedup of the with-RC model, 4-issue, 2-cycle loads, "
           "16/32 core registers, under the\nfour implementation "
           "scenarios of Section 2.4.");

    harness::Experiment exp;

    struct Scenario
    {
        const char *name;
        int connectLat;
        bool extraStage;
    };
    const std::vector<Scenario> scenarios{
        {"0cyc", 0, false},
        {"0cyc+stage", 0, true},
        {"1cyc", 1, false},
        {"1cyc+stage", 1, true},
    };

    std::vector<SpeedupCell> cells;
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w);
        for (const Scenario &sc : scenarios) {
            harness::CompileOptions o = withRc(w, core, 4);
            o.rc.connectLatency = sc.connectLat;
            o.machine.lat.connectLatency = sc.connectLat;
            o.rc.extraPipeStage = sc.extraStage;
            cells.push_back({&w, o});
        }
        cells.push_back({&w, unlimited(4)});
    }
    std::vector<double> s = parallelSpeedups(exp, cells);

    TextTable t;
    t.header({"benchmark", "0cyc", "0cyc+stage", "1cyc",
              "1cyc+stage", "unl"});
    std::vector<std::vector<double>> cols(scenarios.size() + 1);
    std::size_t cell = 0;
    for (const auto &w : workloads::allWorkloads()) {
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i <= scenarios.size(); ++i) {
            cols[i].push_back(s[cell]);
            row.push_back(TextTable::num(s[cell]));
            ++cell;
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nExpected shape (paper): very little performance is lost "
        "when zero-cycle connects\ncannot be implemented — all four "
        "scenarios land within a few percent of each other,\nmaking "
        "RC feasible for high-speed implementations.\n");
    return 0;
}
