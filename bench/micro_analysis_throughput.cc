/**
 * @file
 * micro_analysis_throughput — the tracked performance benchmark for
 * the map-state static analyzer (src/analysis).
 *
 * Compiles every workload at the fig12-style configuration (4-issue,
 * RC on, ILP) and repeatedly analyzes the emitted machine code until
 * a minimum wall-clock budget is spent; instructions analyzed per
 * second is the headline metric.  Every run re-checks determinism:
 * the instruction count, diagnostic count and claim count must not
 * change between repetitions, and the compiler's output must be
 * diagnostic-clean.
 *
 * Emits a machine-readable JSON file (BENCH_analysis_throughput.json)
 * in the same shape as BENCH_sim_throughput.json, with
 * "instructions" as the deterministic per-entry key and "ips"
 * (analyzed instructions per second) as the rate — tools/benchdiff
 * understands both layouts.
 *
 * Options:
 *   --json FILE     output file (default
 *                   BENCH_analysis_throughput.json, "-" = stdout)
 *   --min-time S    minimum seconds per workload (default 0.5)
 *   --smoke         tiny smoke run used by the ctest target
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "bench/bench_common.hh"

namespace
{

using namespace rcsim;
using Clock = std::chrono::steady_clock;

struct Measurement
{
    std::string name;
    Count instructions = 0; // analyzed per run (deterministic)
    std::size_t claims = 0; // emitted per run (deterministic)
    int runs = 0;
    double secs = 0.0;
    double ips = 0.0; // analyzed instructions / second
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcsim::bench;
    setQuiet(true);

    std::string json_file = "BENCH_analysis_throughput.json";
    double min_time = 0.5;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (a == "--json" && next())
            json_file = argv[i];
        else if (a == "--min-time" && next())
            min_time = std::atof(argv[i]);
        else if (a == "--smoke")
            min_time = 0.01;
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return 2;
        }
    }

    std::vector<Measurement> results;
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        harness::CompileOptions opts =
            withRc(w, paperCore(w), 4);
        harness::CompiledProgram cp =
            harness::compileWorkload(w, opts);

        analysis::AnalyzerOptions ao;
        ao.rc = opts.rc;

        Measurement m;
        m.name = w.name;
        analysis::AnalysisResult first =
            analysis::analyzeProgram(cp.program, ao);
        if (!first.clean()) {
            std::fprintf(stderr, "%s: compiler output not clean:\n%s",
                         w.name.c_str(),
                         analysis::renderDiagnostics(first.diags)
                             .c_str());
            return 1;
        }
        m.instructions = first.instructions;
        m.claims = first.claims.size();

        Count analyzed = 0;
        Clock::time_point t0 = Clock::now();
        do {
            analysis::AnalysisResult r =
                analysis::analyzeProgram(cp.program, ao);
            if (r.instructions != m.instructions ||
                !r.clean() || r.claims.size() != m.claims) {
                std::fprintf(stderr, "%s: NONDETERMINISTIC result\n",
                             w.name.c_str());
                return 1;
            }
            analyzed += r.instructions;
            ++m.runs;
            m.secs = std::chrono::duration<double>(Clock::now() - t0)
                         .count();
        } while (m.secs < min_time);
        m.ips = static_cast<double>(analyzed) / m.secs;

        std::printf("%-12s %10.0f instr/s  (%llu instrs, "
                    "%zu claims, %d runs, %.2fs)\n",
                    m.name.c_str(), m.ips,
                    static_cast<unsigned long long>(m.instructions),
                    m.claims, m.runs, m.secs);
        results.push_back(std::move(m));
    }

    double total_secs = 0.0, total_analyzed = 0.0;
    for (const Measurement &m : results) {
        total_secs += m.secs;
        total_analyzed += m.ips * m.secs;
    }
    double aggregate_ips =
        total_secs > 0 ? total_analyzed / total_secs : 0.0;
    std::printf("%-12s %10.0f instr/s\n", "aggregate", aggregate_ips);

    // ---- JSON report (benchdiff-compatible layout). ----
    char buf[256];
    std::string j = "{\n  \"bench\": \"analysis_throughput\",\n"
                    "  \"config\": {\"issue\": 4, \"load_latency\": 2,"
                    " \"core_int\": 16, \"core_fp\": 32, \"rc\": true,"
                    " \"opt\": \"ilp\"},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"instructions\": %llu, "
            "\"claims\": %zu, \"runs\": %d, \"secs\": %.4f, "
            "\"ips\": %.0f}%s\n",
            m.name.c_str(),
            static_cast<unsigned long long>(m.instructions),
            m.claims, m.runs, m.secs, m.ips,
            i + 1 < results.size() ? "," : "");
        j += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  ],\n  \"aggregate\": {\"ips\": %.0f}\n}\n",
                  aggregate_ips);
    j += buf;

    if (json_file == "-") {
        std::fputs(j.c_str(), stdout);
    } else {
        std::ofstream out(json_file);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_file.c_str());
            return 1;
        }
        out << j;
        std::printf("wrote %s\n", json_file.c_str());
    }
    return 0;
}
