/**
 * @file
 * Extension: the paper's concluding prediction — "as new code
 * parallelization methods become available, we expect that the RC
 * method will become beneficial for architectures with 32 or more
 * registers."  We emulate "more aggressive parallelization" by
 * raising the unroll budget, and measure whether an RC benefit
 * appears at 32 core registers on an 8-issue machine.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Extension: RC at 32+ registers under more aggressive ILP",
           "8-issue, 2-cycle loads, 32 core int registers (int "
           "benchmarks) / 64 core fp registers\n(fp benchmarks); "
           "default vs aggressive unrolling (the paper's Section 6 "
           "prediction).");

    harness::Experiment exp;

    struct Level
    {
        const char *name;
        int maxUnroll;
        int maxBodyOps;
    };
    const Level levels[] = {{"default", 16, 560},
                            {"aggressive", 64, 2400}};

    TextTable t;
    t.header({"benchmark", "base-def", "rc-def", "base-aggr",
              "rc-aggr"});
    std::vector<std::vector<double>> cols(4);
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w, 32, 64);
        std::vector<std::string> row{w.name};
        int c = 0;
        for (const Level &lvl : levels) {
            for (bool rc : {false, true}) {
                harness::CompileOptions o =
                    rc ? withRc(w, core, 8) : withoutRc(w, core, 8);
                o.ilp.maxUnroll = lvl.maxUnroll;
                o.ilp.maxBodyOps = lvl.maxBodyOps;
                double s = exp.speedup(w, o);
                cols[c++].push_back(s);
                row.push_back(TextTable::num(s));
            }
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nThe prediction holds when the rc-aggr column separates "
        "from base-aggr while rc-def and\nbase-def remain tied: the "
        "extra parallelism raises simultaneous pressure past 32 "
        "registers,\nand the extended section absorbs it.\n");
    return 0;
}
