/**
 * @file
 * Shared helpers for the figure-reproduction benches: configuration
 * shorthand, per-benchmark sweeps with verification, and paper-style
 * table output.  Every measurement is checked against the
 * interpreter's golden checksum (Experiment panics otherwise), so a
 * bench that prints numbers has also proven them correct.
 */

#ifndef RCSIM_BENCH_BENCH_COMMON_HH
#define RCSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace rcsim::bench
{

/**
 * The per-benchmark core size used by the "16 core integer registers
 * for integer benchmarks, 32 core floating-point registers for
 * floating-point benchmarks" experiments (Figures 10-13).
 */
inline int
paperCore(const workloads::Workload &w, int int_core = 16,
          int fp_core = 32)
{
    return w.isFp ? fp_core : int_core;
}

/** with-RC options at the paper configuration. */
inline harness::CompileOptions
withRc(const workloads::Workload &w, int core, int issue,
       int load_lat = 2)
{
    harness::CompileOptions o;
    o.level = opt::OptLevel::Ilp;
    o.rc = harness::rcConfigFor(w.isFp, core);
    o.machine = harness::Experiment::machineFor(issue, load_lat);
    return o;
}

/** without-RC options. */
inline harness::CompileOptions
withoutRc(const workloads::Workload &w, int core, int issue,
          int load_lat = 2)
{
    harness::CompileOptions o;
    o.level = opt::OptLevel::Ilp;
    o.rc = harness::baseConfigFor(w.isFp, core);
    o.machine = harness::Experiment::machineFor(issue, load_lat);
    return o;
}

/** unlimited-register options. */
inline harness::CompileOptions
unlimited(int issue, int load_lat = 2)
{
    harness::CompileOptions o;
    o.level = opt::OptLevel::Ilp;
    o.rc = core::RcConfig::unlimited();
    o.machine = harness::Experiment::machineFor(issue, load_lat);
    return o;
}

/** Print a figure header in a uniform style. */
inline void
banner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n=== %s ===\n%s\n\n", title.c_str(),
                subtitle.c_str());
}

/** Append a geometric-mean row to a per-benchmark table. */
void geomeanRow(TextTable &table, const std::string &label,
                const std::vector<std::vector<double>> &columns);

/** One (workload, options) cell of a figure's speedup grid. */
struct SpeedupCell
{
    const workloads::Workload *workload = nullptr;
    harness::CompileOptions opts;
};

/**
 * exp.speedup() for every cell, computed on the sweep worker pool
 * (jobs = 0 → RCSIM_JOBS env / hardware concurrency).  Baselines are
 * warmed first so grid workers never duplicate a baseline run.
 * Results come back in cell order, identical to a serial loop.
 *
 * The grid runs through the crash-resilient sweep runner (DESIGN.md
 * §11); the resilience knobs come from the environment so every
 * figure bench inherits them without new flags:
 *   RCSIM_BENCH_JOURNAL=FILE   journal completed cells to FILE
 *   RCSIM_BENCH_RESUME=1       restore completed cells from it
 *   RCSIM_BENCH_DEADLINE_MS=N  per-cell wall-clock deadline
 *   RCSIM_BENCH_RETRIES=N      retries for Transient failures
 * A cell that still fails panics, exactly as exp.speedup() did: a
 * figure must never be built from a failed measurement.
 */
std::vector<double> parallelSpeedups(harness::Experiment &exp,
                                     const std::vector<SpeedupCell> &cells,
                                     int jobs = 0);

} // namespace rcsim::bench

#endif // RCSIM_BENCH_BENCH_COMMON_HH
