#include "bench/bench_common.hh"

#include "support/stats.hh"

namespace rcsim::bench
{

void
geomeanRow(TextTable &table, const std::string &label,
           const std::vector<std::vector<double>> &columns)
{
    std::vector<std::string> cells{label};
    for (const std::vector<double> &col : columns)
        cells.push_back(TextTable::num(geomean(col)));
    table.row(std::move(cells));
}

} // namespace rcsim::bench
