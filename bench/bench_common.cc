#include "bench/bench_common.hh"

#include "support/stats.hh"

namespace rcsim::bench
{

void
geomeanRow(TextTable &table, const std::string &label,
           const std::vector<std::vector<double>> &columns)
{
    std::vector<std::string> cells{label};
    for (const std::vector<double> &col : columns)
        cells.push_back(TextTable::num(geomean(col)));
    table.row(std::move(cells));
}

std::vector<double>
parallelSpeedups(harness::Experiment &exp,
                 const std::vector<SpeedupCell> &cells, int jobs)
{
    // Warm the baseline cache first: one run per distinct workload,
    // themselves in parallel, so the grid workers below always hit.
    std::vector<const workloads::Workload *> unique;
    for (const SpeedupCell &c : cells) {
        bool seen = false;
        for (const workloads::Workload *w : unique)
            seen = seen || w == c.workload;
        if (!seen)
            unique.push_back(c.workload);
    }
    harness::parallelFor(unique.size(), jobs, [&](std::size_t i) {
        exp.baselineCycles(*unique[i]);
    });

    std::vector<double> speedups(cells.size());
    harness::parallelFor(cells.size(), jobs, [&](std::size_t i) {
        speedups[i] = exp.speedup(*cells[i].workload, cells[i].opts);
    });
    return speedups;
}

} // namespace rcsim::bench
