#include "bench/bench_common.hh"

#include <cstdlib>

#include "harness/sweep.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace rcsim::bench
{

void
geomeanRow(TextTable &table, const std::string &label,
           const std::vector<std::vector<double>> &columns)
{
    std::vector<std::string> cells{label};
    for (const std::vector<double> &col : columns)
        cells.push_back(TextTable::num(geomean(col)));
    table.row(std::move(cells));
}

std::vector<double>
parallelSpeedups(harness::Experiment &exp,
                 const std::vector<SpeedupCell> &cells, int jobs)
{
    // Warm the baseline cache first: one run per distinct workload,
    // themselves in parallel, so the grid workers below always hit.
    std::vector<const workloads::Workload *> unique;
    for (const SpeedupCell &c : cells) {
        bool seen = false;
        for (const workloads::Workload *w : unique)
            seen = seen || w == c.workload;
        if (!seen)
            unique.push_back(c.workload);
    }
    harness::parallelFor(unique.size(), jobs, [&](std::size_t i) {
        exp.baselineCycles(*unique[i]);
    });

    // The grid itself runs through the crash-resilient runner so a
    // long figure sweep can be journaled / resumed / deadlined from
    // the environment (see bench_common.hh).  With no knobs set this
    // is exactly the plain parallel sweep.
    harness::SweepOptions opts;
    opts.jobs = jobs;
    if (const char *env = std::getenv("RCSIM_BENCH_JOURNAL"))
        opts.journal = env;
    if (const char *env = std::getenv("RCSIM_BENCH_RESUME"))
        opts.resume = std::atoi(env) != 0;
    if (const char *env = std::getenv("RCSIM_BENCH_DEADLINE_MS"))
        opts.deadlineMs = std::atoi(env);
    if (const char *env = std::getenv("RCSIM_BENCH_RETRIES"))
        opts.retries = std::atoi(env);

    std::vector<harness::SweepPoint> points(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        points[i].workload = cells[i].workload;
        points[i].opts = cells[i].opts;
    }
    harness::SweepReport report =
        harness::runSweepResilient(points, opts);

    std::vector<double> speedups(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const harness::RunOutcome &o = report.outcomes[i];
        // Same contract as exp.speedup(): a failed or unverified
        // measurement must never land in a figure.
        if (o.failed() || o.cycles == 0)
            panic("bench cell ", i, " ('",
                  cells[i].workload->name,
                  "') failed: ", harness::toString(o.status), ": ",
                  o.error);
        speedups[i] =
            static_cast<double>(
                exp.baselineCycles(*cells[i].workload)) /
            static_cast<double>(o.cycles);
    }
    return speedups;
}

} // namespace rcsim::bench
