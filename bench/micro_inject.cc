/**
 * @file
 * google-benchmark micro-benchmarks for the fault-injection
 * subsystem: the cost of the probe hooks on the simulator hot path.
 *
 * The design goal is that a disabled probe (the default null pointer)
 * leaves the hot path untouched, and that recording or checking the
 * commit stream costs little enough to run 50-seed campaigns
 * interactively.  BM_Simulator{NoProbe,Recorder,Checker} measure the
 * same tight loop under the three probe regimes.
 */

#include <benchmark/benchmark.h>

#include "inject/oracle.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

namespace
{

using namespace rcsim;

isa::Program
loopProgram()
{
    isa::AsmResult r = isa::assemble(R"(
func main:
  li r1, 100000
  li r2, 0
  li r3, 0
  li r8, 0
loop:
  addi r2, r2, 3
  xor  r3, r3, r2
  addi r1, r1, -1
  bgt+ r1, r8, loop
  sw   r3, r0, 0
  halt
)");
    if (!r.ok())
        fatal("bench program failed to assemble: ", r.error);
    isa::Program p = r.program;
    p.memorySize = 1 << 16;
    return p;
}

sim::SimConfig
cfg()
{
    sim::SimConfig c;
    c.machine.issueWidth = 4;
    c.machine.memChannels = 2;
    c.rc = core::RcConfig::withRc(16, 16);
    return c;
}

void
runWith(benchmark::State &state, sim::SimProbe *probe)
{
    isa::Program p = loopProgram();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        sim::Simulator sim(p, cfg());
        if (probe)
            sim.attachProbe(probe);
        sim::SimResult r = sim.run();
        if (!r.ok)
            fatal("bench run failed: ", r.error);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/** Baseline: no probe attached — the hot path's null-check only. */
void
BM_SimulatorNoProbe(benchmark::State &state)
{
    runWith(state, nullptr);
}
BENCHMARK(BM_SimulatorNoProbe)->Unit(benchmark::kMillisecond);

/** Golden-run regime: every committed effect is appended to a log. */
void
BM_SimulatorRecorder(benchmark::State &state)
{
    inject::CommitRecorder rec;
    runWith(state, &rec);
}
BENCHMARK(BM_SimulatorRecorder)->Unit(benchmark::kMillisecond);

/** Checked-run regime: every effect compared against a golden log. */
void
BM_SimulatorChecker(benchmark::State &state)
{
    isa::Program p = loopProgram();
    sim::Simulator golden(p, cfg());
    inject::CommitRecorder rec;
    golden.attachProbe(&rec);
    if (!golden.run().ok)
        fatal("bench golden run failed");

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        sim::Simulator sim(p, cfg());
        inject::DivergenceChecker chk(rec.log(), p);
        sim.attachProbe(&chk);
        sim::SimResult r = sim.run();
        if (!r.ok || chk.finish().diverged)
            fatal("bench checked run diverged");
        cycles += r.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorChecker)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
