/**
 * @file
 * micro_sim_throughput — the tracked simulator-performance benchmark.
 *
 * Measures two things and emits both into a machine-readable JSON
 * file (BENCH_sim_throughput.json) so the perf trajectory can be
 * compared across PRs:
 *
 *  1. Simulated MIPS: every workload is compiled once at the
 *     fig12-style configuration (4-issue, 2-cycle loads, 16/32 core
 *     registers, with RC, ILP optimization) and re-simulated until a
 *     minimum wall-clock budget is spent; simulated instructions per
 *     wall-clock second is the headline number.  Each run's checksum
 *     is verified against the interpreter golden value and the cycle
 *     count is recorded, so a perf regression hunt can also see any
 *     timing-model drift.
 *
 *  2. Sweep wall-clock: the (workload × {base, rc, unlimited})
 *     4-issue grid is run through harness::runSweep() serially and
 *     with the worker pool, timing both and asserting the outcomes
 *     are identical.
 *
 * Options:
 *   --json FILE       output file (default BENCH_sim_throughput.json,
 *                     "-" = stdout only)
 *   --min-time S      per-workload measurement budget (default 0.5)
 *   --workloads A,B   subset of workloads (default: all twelve)
 *   --jobs N          sweep worker threads (0 = auto, default 0)
 *   --smoke           tiny smoke run (cmp only, 0.02 s budget) used
 *                     by the ctest target to keep this binary from
 *                     silently rotting
 *   --trace FILE      write a Chrome trace_event JSON trace of the
 *                     bench (RCSIM_TRACE env equivalent); tracing
 *                     perturbs the numbers — don't mix with a
 *                     tracked BENCH json update
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "trace/trace.hh"

namespace
{

using namespace rcsim;
using Clock = std::chrono::steady_clock;

double
secsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct WorkloadMeasurement
{
    std::string name;
    Cycle cycles = 0;         // per-run cycle count (deterministic)
    Count instructions = 0;   // per-run instruction count
    int runs = 0;
    double secs = 0.0;
    double mips = 0.0;
};

std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(spec.substr(pos));
            break;
        }
        out.push_back(spec.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcsim::bench;
    setQuiet(true);

    std::string json_file = "BENCH_sim_throughput.json";
    double min_time = 0.5;
    std::vector<std::string> names;
    int jobs = 0;
    std::string trace_file;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (a == "--json" && next())
            json_file = argv[i];
        else if (a == "--min-time" && next())
            min_time = std::atof(argv[i]);
        else if (a == "--workloads" && next())
            names = splitList(argv[i]);
        else if (a == "--jobs" && next())
            jobs = std::atoi(argv[i]);
        else if (a == "--trace" && next())
            trace_file = argv[i];
        else if (a == "--smoke") {
            names = {"cmp"};
            min_time = 0.02;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return 2;
        }
    }

    trace::ScopedDump tracer(
        trace::resolveTracePath(trace_file,
                                "bench_sim_trace.json"),
        std::string());

    std::vector<const workloads::Workload *> suite;
    if (names.empty()) {
        for (const auto &w : workloads::allWorkloads())
            suite.push_back(&w);
    } else {
        for (const std::string &n : names) {
            const workloads::Workload *w = workloads::findWorkload(n);
            if (!w) {
                std::fprintf(stderr, "unknown workload '%s'\n",
                             n.c_str());
                return 2;
            }
            suite.push_back(w);
        }
    }

    // ---- 1. Simulated MIPS at the fig12-style configuration. ----
    std::vector<WorkloadMeasurement> measurements;
    Count total_instrs = 0;
    double total_secs = 0.0;
    for (const workloads::Workload *w : suite) {
        harness::CompileOptions o = withRc(*w, paperCore(*w), 4, 2);
        harness::CompiledProgram cp =
            harness::compileWorkload(*w, o);
        sim::SimConfig sc;
        sc.machine = o.machine;
        sc.rc = o.rc;
        sim::Simulator sim(cp.program, sc);

        WorkloadMeasurement m;
        m.name = w->name;
        sim::SimResult warm = sim.run(); // warm caches, verify once
        if (!warm.ok ||
            sim.state().loadWord(cp.resultAddr) != cp.golden) {
            std::fprintf(stderr,
                         "%s: simulation failed or checksum "
                         "mismatch\n",
                         w->name.c_str());
            return 1;
        }
        m.cycles = warm.cycles;
        m.instructions = warm.instructions;

        Clock::time_point start = Clock::now();
        Count instrs = 0;
        do {
            sim::SimResult r = sim.run();
            if (!r.ok || r.cycles != m.cycles) {
                std::fprintf(stderr,
                             "%s: non-deterministic re-run\n",
                             w->name.c_str());
                return 1;
            }
            instrs += r.instructions;
            ++m.runs;
            m.secs = secsSince(start);
        } while (m.secs < min_time);
        m.mips = static_cast<double>(instrs) / m.secs / 1e6;
        total_instrs += instrs;
        total_secs += m.secs;

        std::printf("%-12s %8.2f MIPS  (%llu cycles, %llu instrs, "
                    "%d runs)\n",
                    m.name.c_str(), m.mips,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<unsigned long long>(m.instructions),
                    m.runs);
        measurements.push_back(std::move(m));
    }
    double aggregate_mips =
        total_secs > 0
            ? static_cast<double>(total_instrs) / total_secs / 1e6
            : 0.0;
    std::printf("%-12s %8.2f MIPS\n", "aggregate", aggregate_mips);

    // ---- 2. Sweep wall-clock: serial vs worker pool. ----
    std::vector<harness::SweepPoint> points;
    for (const workloads::Workload *w : suite) {
        int core = paperCore(*w);
        points.push_back({w, withoutRc(*w, core, 4), 0, false});
        points.push_back({w, withRc(*w, core, 4), 0, false});
        points.push_back({w, unlimited(4), 0, false});
    }

    Clock::time_point t0 = Clock::now();
    std::vector<harness::RunOutcome> serial =
        harness::runSweep(points, 1);
    double serial_secs = secsSince(t0);

    int pool_jobs = harness::resolveJobs(jobs);
    t0 = Clock::now();
    std::vector<harness::RunOutcome> parallel =
        harness::runSweep(points, pool_jobs);
    double parallel_secs = secsSince(t0);

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = serial[i].status == parallel[i].status &&
                    serial[i].cycles == parallel[i].cycles &&
                    serial[i].instructions ==
                        parallel[i].instructions &&
                    serial[i].result == parallel[i].result;
    std::printf("sweep: %zu points, serial %.2fs, %d-job %.2fs "
                "(%.2fx), outcomes %s\n",
                points.size(), serial_secs, pool_jobs, parallel_secs,
                parallel_secs > 0 ? serial_secs / parallel_secs : 0.0,
                identical ? "identical" : "DIVERGED");
    if (!identical)
        return 1;

    // ---- 3. Grid churn: the constant-cost regime. ----
    //
    // The full sweep above is simulation-dominated, so per-point
    // constant costs (backend compile, simulator construction or
    // arena rebind) disappear into the noise.  This section
    // replicates the grid with a tiny cycle cap: simulated work
    // shrinks toward zero and the constant costs ARE the number.
    // This is the regime the executor's per-worker arenas optimize —
    // compare with RCSIM_ARENA=0 to see the construction cost come
    // back.
    std::vector<harness::SweepPoint> churn;
    for (int rep = 0; rep < 8; ++rep)
        for (harness::SweepPoint p : points) {
            p.maxCycles = 2000; // most points hit the cap: fine,
                                // we time overhead, not outcomes
            churn.push_back(p);
        }
    t0 = Clock::now();
    std::vector<harness::RunOutcome> churned =
        harness::runSweep(churn, 1);
    double churn_secs = secsSince(t0);
    std::printf("churn: %zu capped points, serial %.2fs "
                "(%.2f ms/point)\n",
                churn.size(), churn_secs,
                churn.empty()
                    ? 0.0
                    : churn_secs * 1e3 /
                          static_cast<double>(churn.size()));
    (void)churned;

    // ---- JSON report. ----
    std::string j = "{\n  \"bench\": \"sim_throughput\",\n";
    j += "  \"config\": {\"issue\": 4, \"load_latency\": 2, "
         "\"core_int\": 16, \"core_fp\": 32, \"rc\": true, "
         "\"opt\": \"ilp\"},\n";
    j += "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
        const WorkloadMeasurement &m = measurements[i];
        char buf[256];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"cycles\": %llu, "
            "\"instructions\": %llu, \"runs\": %d, "
            "\"secs\": %.4f, \"mips\": %.2f}%s\n",
            m.name.c_str(),
            static_cast<unsigned long long>(m.cycles),
            static_cast<unsigned long long>(m.instructions), m.runs,
            m.secs, m.mips,
            i + 1 < measurements.size() ? "," : "");
        j += buf;
    }
    j += "  ],\n";
    {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "  \"aggregate\": {\"mips\": %.2f},\n",
                      aggregate_mips);
        j += buf;
        std::snprintf(
            buf, sizeof buf,
            "  \"sweep\": {\"points\": %zu, \"jobs\": %d, "
            "\"hardware_concurrency\": %u, "
            "\"serial_secs\": %.3f, \"parallel_secs\": %.3f, "
            "\"speedup\": %.2f, \"identical\": %s},\n",
            points.size(), pool_jobs,
            std::thread::hardware_concurrency(), serial_secs,
            parallel_secs,
            parallel_secs > 0 ? serial_secs / parallel_secs : 0.0,
            identical ? "true" : "false");
        j += buf;
        std::snprintf(
            buf, sizeof buf,
            "  \"churn\": {\"points\": %zu, \"serial_secs\": %.3f, "
            "\"ms_per_point\": %.3f}\n",
            churn.size(), churn_secs,
            churn.empty() ? 0.0
                          : churn_secs * 1e3 /
                                static_cast<double>(churn.size()));
        j += buf;
    }
    j += "}\n";

    if (json_file == "-") {
        std::fputs(j.c_str(), stdout);
    } else {
        std::ofstream out(json_file);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_file.c_str());
            return 1;
        }
        out << j;
        std::printf("wrote %s\n", json_file.c_str());
    }
    return 0;
}
