/**
 * @file
 * Ablation A: the four automatic-reset models of Section 2.3.  The
 * paper implements and simulates only model three; this bench
 * measures all four on the small-core configuration, reporting both
 * speedup and the dynamic connect count per model.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Ablation A: RC models 1-4 (Section 2.3)",
           "Speedup of the with-RC model under each automatic-reset "
           "model; 4-issue, 2-cycle loads,\n8 core int registers "
           "(int benchmarks) / 16 core fp registers (fp "
           "benchmarks).");

    harness::Experiment exp;
    const std::vector<core::RcModel> models{
        core::RcModel::NoReset,
        core::RcModel::WriteReset,
        core::RcModel::WriteResetReadUpdate,
        core::RcModel::ReadWriteReset,
    };

    TextTable t;
    t.header({"benchmark", "m1-noreset", "m2-wreset",
              "m3-wr+rupd", "m4-rwreset"});
    std::vector<std::vector<double>> cols(models.size());
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w, 8, 16);
        std::vector<std::string> row{w.name};
        for (std::size_t i = 0; i < models.size(); ++i) {
            harness::CompileOptions o = withRc(w, core, 4);
            o.rc.model = models[i];
            double s = exp.speedup(w, o);
            cols[i].push_back(s);
            row.push_back(TextTable::num(s));
        }
        t.row(std::move(row));
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nThe paper picks model three: its automatic read-map "
        "update makes the value written to an\nextended register "
        "readable without a following connect-use, which shows up "
        "here as the\nbest (or tied) geomean.\n");
    return 0;
}
