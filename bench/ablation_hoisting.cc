/**
 * @file
 * Ablation B: loop-invariant connect hoisting (the "proper
 * selection" of map entries the paper's Section 3 describes: with a
 * good choice of index, the register allocator minimises the
 * artificial dependences the connects introduce).  Compares the
 * with-RC model with hoisting on and off.
 */

#include "bench/bench_common.hh"

int
main()
{
    using namespace rcsim;
    using namespace rcsim::bench;
    setQuiet(true);

    banner("Ablation B: connect hoisting (Section 3)",
           "With-RC speedup and dynamic connect count with "
           "loop-invariant connect-use hoisting\non and off; "
           "4-issue, 2-cycle loads, 8/16 core registers.");

    harness::Experiment exp;

    TextTable t;
    t.header({"benchmark", "hoist-on", "hoist-off", "conns-on",
              "conns-off"});
    std::vector<std::vector<double>> cols(2);
    for (const auto &w : workloads::allWorkloads()) {
        int core = paperCore(w, 8, 16);
        harness::CompileOptions on = withRc(w, core, 4);
        harness::CompileOptions off = on;
        off.rc.hoistConnects = false;
        double son = exp.speedup(w, on);
        double soff = exp.speedup(w, off);
        harness::RunOutcome ron = exp.measured(w, on);
        harness::RunOutcome roff = exp.measured(w, off);
        cols[0].push_back(son);
        cols[1].push_back(soff);
        t.row({w.name, TextTable::num(son), TextTable::num(soff),
               std::to_string(ron.compiled.connectOps),
               std::to_string(roff.compiled.connectOps)});
    }
    geomeanRow(t, "geomean", cols);
    std::fputs(t.render().c_str(), stdout);

    std::printf(
        "\nHoisting moves the connect-use of a loop-resident "
        "extended register into the preheader\nwhen a map index is "
        "free across the loop, instead of reconnecting on every "
        "iteration.\n");
    return 0;
}
