/**
 * @file
 * Scenario example: upward compatibility and instruction encoding
 * (paper Sections 2.2 and 4).
 *
 * Shows that (1) a base-architecture binary runs bit-identically —
 * results and cycle counts — on hardware with the RC extension, and
 * (2) connect instructions, including the combined connect-use-use /
 * def-use / def-def forms, fit the fixed 32-bit instruction format
 * without touching existing operand fields.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

int
main()
{
    using namespace rcsim;

    // A small "legacy" program compiled for the base architecture.
    const char *legacy = R"(
func gcd:
  lw r5, r0, 8
  lw r6, r0, 12
loop:
  beq r6, r7, done
  rem r8, r5, r6
  mov r5, r6
  mov r6, r8
  j loop
done:
  sw r5, r0, 8
  rts
func main:
  li r7, 0
  li r1, 252
  li r2, 105
  sw r1, r0, 4
  sw r2, r0, 8
  jsr gcd
  lw r9, r0, 4
  halt
)";
    isa::AsmResult ar = isa::assemble(legacy);
    if (!ar.ok())
        fatal("assembly failed: ", ar.error);
    isa::Program prog = ar.program;
    prog.memorySize = 1 << 16;

    // Run on the base machine and on three RC machines with
    // different core sizes; the binary never notices.
    sim::SimConfig base;
    base.machine.issueWidth = 4;
    base.rc = core::RcConfig::withoutRc(16, 16);
    sim::Simulator bsim(prog, base);
    sim::SimResult bres = bsim.run();
    Word expected = bsim.state().readInt(9);
    std::printf("base machine     : gcd result r9=%d, %llu cycles\n",
                expected, (unsigned long long)bres.cycles);

    for (int core : {16, 24, 32}) {
        sim::SimConfig rc = base;
        rc.rc = core::RcConfig::withRc(core, core);
        sim::Simulator rsim(prog, rc);
        sim::SimResult rres = rsim.run();
        bool same = rsim.state().readInt(9) == expected &&
                    rres.cycles == bres.cycles;
        std::printf("RC, %2d core regs : gcd result r9=%d, %llu "
                    "cycles, maps %s  %s\n",
                    core, rsim.state().readInt(9),
                    (unsigned long long)rres.cycles,
                    rsim.state().map(isa::RegClass::Int).allHome()
                        ? "at home"
                        : "DISTURBED",
                    same ? "IDENTICAL" : "MISMATCH");
    }

    // Encoding demonstration: every connect shape in 32 bits.
    std::printf("\nconnect encodings in the fixed 32-bit format:\n");
    const char *rc_snippets = R"(
func main:
  connect.use int i3, p200
  connect.def fp  i7, p131
  connect.uu  int i1, p16, i2, p255
  connect.du  fp  i5, p40, i6, p41
  connect.dd  int i8, p99, i9, p98
  halt
)";
    isa::AsmResult cr = isa::assemble(rc_snippets);
    if (!cr.ok())
        fatal("assembly failed: ", cr.error);
    for (std::size_t i = 0; i < cr.program.code.size(); ++i) {
        const isa::Instruction &ins = cr.program.code[i];
        isa::EncodeResult enc =
            isa::encode(ins, static_cast<std::int32_t>(i));
        if (!enc.ok()) {
            std::printf("  %-44s  NOT ENCODABLE\n",
                        ins.toString().c_str());
            continue;
        }
        auto back = isa::decode(enc.word,
                                static_cast<std::int32_t>(i));
        std::printf("  %-44s  0x%08x  round-trip %s\n",
                    ins.toString().c_str(), enc.word,
                    back && back->toString() == ins.toString()
                        ? "OK"
                        : "FAILED");
    }
    return 0;
}
