/**
 * @file
 * Scenario example: operating-system concerns on an RC machine
 * (paper Section 4).
 *
 * Demonstrates, on hand-written assembly:
 *  1. round-robin "scheduling" of two processes via the two
 *     context-save formats (extended vs. original, selected by the
 *     PSW format flag),
 *  2. an interrupt handler running with the register map bypassed,
 *  3. the jsr/rts map reset that keeps subroutine conventions intact.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

namespace
{

using namespace rcsim;

isa::Program
assembleOrDie(const char *src)
{
    isa::AsmResult r = isa::assemble(src);
    if (!r.ok())
        fatal("assembly failed: ", r.error);
    isa::Program p = r.program;
    p.memorySize = 1 << 16;
    return p;
}

// Process A: an extended-architecture program keeping its counter in
// extended register p200 through the mapping table.
const char *procA = R"(
func main:
  li r1, 400
  li r2, 0
  li r8, 0
  connect.def int i5, p200
  li r5, 0
loop:
  addi r2, r2, 7
  connect.use int i6, p200
  addi r6, r6, 1
  connect.def int i6, p200
  mov r6, r6
  addi r1, r1, -1
  bgt+ r1, r8, loop
  halt
)";

// Process B: a base-architecture binary (no connects at all).
const char *procB = R"(
func main:
  li r1, 300
  li r3, 1
  li r8, 0
loop:
  slli r3, r3, 1
  ori  r3, r3, 1
  andi r3, r3, 0xffff
  addi r1, r1, -1
  bgt+ r1, r8, loop
  halt
)";

} // namespace

int
main()
{
    using namespace rcsim;

    sim::SimConfig cfg;
    cfg.machine.issueWidth = 2;
    cfg.rc = core::RcConfig::withRc(16, 16);

    // Reference runs, uninterrupted.
    isa::Program pa = assembleOrDie(procA);
    isa::Program pb = assembleOrDie(procB);
    sim::Simulator refA(pa, cfg), refB(pb, cfg);
    refA.run();
    refB.run();
    Word goldenA = refA.state().readInt(2);
    Word goldenAExt = refA.state().readInt(200);
    Word goldenB = refB.state().readInt(3);

    // Round-robin the two processes on one machine, 150 cycles per
    // quantum, saving/restoring contexts in the format each process
    // declares (Section 4.2).
    sim::Simulator simA(pa, cfg), simB(pb, cfg);
    simB.state().psw().setExtendedFormat(false); // legacy process

    int switches = 0;
    while (!simA.halted() || !simB.halted()) {
        if (!simA.halted()) {
            simA.step(150);
            ++switches;
            // "Scheduler": save A's full context, then simulate the
            // damage another process would do before A runs again.
            sim::ProcessContext ctx = simA.state().saveContext();
            for (int i = 0; i < 256; ++i)
                simA.state().writeInt(i, -1);
            simA.state().map(isa::RegClass::Int).connectUse(6, 99);
            simA.state().restoreContext(ctx);
        }
        if (!simB.halted()) {
            simB.step(150);
            ++switches;
            sim::ProcessContext ctx = simB.state().saveContext();
            // B's original-format context does not cover extended
            // registers or connections — and must not need to.
            for (int i = 16; i < 256; ++i)
                simB.state().writeInt(i, -1);
            simB.state().map(isa::RegClass::Int).connectDef(3, 150);
            simB.state().restoreContext(ctx);
        }
    }

    std::printf("round-robin with %d context switches:\n", switches);
    std::printf("  process A (extended format): counter=%d "
                "(expected %d), ext reg=%d (expected %d)  %s\n",
                simA.state().readInt(2), goldenA,
                simA.state().readInt(200), goldenAExt,
                simA.state().readInt(2) == goldenA &&
                        simA.state().readInt(200) == goldenAExt
                    ? "OK"
                    : "MISMATCH");
    std::printf("  process B (original format): value=%d "
                "(expected %d)  %s\n",
                simB.state().readInt(3), goldenB,
                simB.state().readInt(3) == goldenB ? "OK"
                                                   : "MISMATCH");

    // Interrupts: the handler runs with the map bypassed (Section
    // 4.3) and therefore cannot disturb A's extended state.
    const char *withHandler = R"(
func handler:
  addi r9, r9, 1
  rfe
func main:
  li r1, 400
  li r2, 0
  li r8, 0
  connect.def int i5, p200
  li r5, 777
loop:
  addi r2, r2, 7
  addi r1, r1, -1
  bgt+ r1, r8, loop
  halt
)";
    isa::Program ph = assembleOrDie(withHandler);
    sim::SimConfig icfg = cfg;
    icfg.trapVector = 0;
    icfg.interruptCycles = {50, 120, 310};
    sim::Simulator simI(ph, icfg);
    sim::SimResult r = simI.run();
    std::printf("\ninterrupts: %llu taken, handler count=%d, "
                "computation=%d (expected %d), ext reg "
                "preserved=%d  %s\n",
                (unsigned long long)r.stats.get("traps"),
                simI.state().readInt(9), simI.state().readInt(2),
                400 * 7, simI.state().readInt(200),
                simI.state().readInt(2) == 2800 &&
                        simI.state().readInt(200) == 777
                    ? "OK"
                    : "MISMATCH");
    return 0;
}
