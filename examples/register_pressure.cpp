/**
 * @file
 * Scenario example: floating-point register pressure (the paper's
 * motivation for matrix300 / tomcatv).
 *
 * Builds a blocked DAXPY-flavoured kernel with many simultaneously
 * live fp values, then sweeps the core fp register file size with and
 * without Register Connection — a miniature Figure 8 for a program
 * written directly against the rcsim public API.
 */

#include <cstdio>
#include <vector>

#include "harness/experiment.hh"
#include "ir/builder.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workloads/common.hh"

namespace
{

using namespace rcsim;
using workloads::DoLoop;
using workloads::elemAddr;

/**
 * y[i] += sum_k a_k * x[i + k] for eight taps: an 8-tap FIR filter.
 * Each iteration keeps the eight coefficients plus a sliding window
 * of inputs live; unrolling multiplies that pressure.
 */
ir::Module
buildFir()
{
    constexpr int N = 6144;
    constexpr int TAPS = 8;

    ir::Module m;
    m.name = "fir8";

    SplitMix rng(0xf18);
    std::vector<double> x(N + TAPS), y(N);
    for (auto &v : x)
        v = rng.unit() - 0.5;
    int gx = workloads::makeFpArray(m, "x", x);
    int gy = workloads::makeFpArray(m, "y", y);

    int fi = m.addFunction("main");
    ir::Function &fn = m.fn(fi);
    fn.returnsValue = true;
    fn.retClass = ir::RegClass::Int;
    m.entryFunction = fi;

    ir::IRBuilder b(m, fi);
    ir::VReg xbase = b.addrOf(gx);
    ir::VReg ybase = b.addrOf(gy);
    ir::VReg n = b.iconst(N);

    // Materialise the eight coefficients once; they stay live across
    // the whole loop.
    std::vector<ir::VReg> coef;
    for (int k = 0; k < TAPS; ++k)
        coef.push_back(b.fconst(0.125 * (k + 1)));

    ir::VReg acc = b.temp(ir::RegClass::Fp);
    b.assign(acc, b.fconst(0.0));

    DoLoop loop(b, 0, n);
    {
        ir::VReg xptr = elemAddr(b, xbase, loop.iv(), 3);
        ir::VReg sum = b.fmul(coef[0],
                              b.loadF(xptr, 0, ir::MemRef::global(gx)));
        for (int k = 1; k < TAPS; ++k) {
            ir::VReg xv =
                b.loadF(xptr, 8 * k, ir::MemRef::global(gx));
            sum = b.fadd(sum, b.fmul(coef[k], xv));
        }
        b.storeF(sum, elemAddr(b, ybase, loop.iv(), 3), 0,
                 ir::MemRef::global(gy));
        b.assignRR(ir::Opc::FAdd, acc, acc, sum);
    }
    loop.finish();

    b.ret(b.un(ir::Opc::CvtFI, b.fmul(acc, b.fconst(64.0))));
    return m;
}

} // namespace

int
main()
{
    using namespace rcsim;
    setQuiet(true);

    workloads::Workload fir{"fir8", true, buildFir};
    harness::Experiment exp;

    std::printf("8-tap FIR filter, 4-issue, 2-cycle loads: core fp "
                "register sweep\n\n");
    TextTable t;
    t.header({"fp cores", "without RC", "with RC", "RC gain"});
    for (int core : {8, 12, 16, 24, 32, 64}) {
        harness::CompileOptions base;
        base.level = opt::OptLevel::Ilp;
        base.rc = harness::baseConfigFor(true, core);
        base.machine = harness::Experiment::machineFor(4);
        harness::CompileOptions rc = base;
        rc.rc = harness::rcConfigFor(true, core);

        double sb = exp.speedup(fir, base);
        double sr = exp.speedup(fir, rc);
        t.row({std::to_string(core), TextTable::num(sb),
               TextTable::num(sr),
               TextTable::num(100.0 * (sr / sb - 1.0), 1) + "%"});
    }
    std::fputs(t.render().c_str(), stdout);

    harness::CompileOptions unl;
    unl.level = opt::OptLevel::Ilp;
    unl.rc = core::RcConfig::unlimited();
    unl.machine = harness::Experiment::machineFor(4);
    std::printf("\nunlimited-register speedup: %.2f\n",
                exp.speedup(fir, unl));
    std::printf("(all configurations verified against the IR "
                "interpreter's checksum)\n");
    return 0;
}
