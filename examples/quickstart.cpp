/**
 * @file
 * Quickstart: build a tiny workload-style IR function, compile it for
 * a small machine with and without Register Connection, simulate both
 * and compare.
 *
 * Usage: quickstart [workload-name]
 *   With no argument a built-in dot-product kernel is used; with a
 *   name (e.g. "compress") the corresponding paper benchmark runs.
 */

#include <cstdio>
#include <string>

#include "harness/experiment.hh"
#include "ir/builder.hh"
#include "workloads/common.hh"

namespace
{

using namespace rcsim;

/** A small high-pressure kernel built directly against the API. */
ir::Module
buildDemo()
{
    ir::Module m;
    m.name = "demo";

    SplitMix rng(7);
    std::vector<Word> data(2048);
    for (auto &v : data)
        v = static_cast<Word>(rng.below(1000));
    int g = workloads::makeIntArray(m, "data", data);

    int fi = m.addFunction("main");
    ir::Function &fn = m.fn(fi);
    fn.returnsValue = true;
    fn.retClass = ir::RegClass::Int;
    m.entryFunction = fi;

    ir::IRBuilder b(m, fi);
    ir::VReg base = b.addrOf(g);
    ir::VReg n = b.iconst(2048);
    ir::VReg acc = b.temp(ir::RegClass::Int);
    b.assignI(acc, 0);

    workloads::DoLoop loop(b, 0, n);
    {
        ir::VReg v = b.loadW(
            workloads::elemAddr(b, base, loop.iv(), 2), 0,
            ir::MemRef::global(g));
        ir::VReg t = b.add(b.mul(v, v), loop.iv());
        b.assignRR(ir::Opc::Add, acc, acc, t);
    }
    loop.finish();
    b.ret(acc);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcsim;

    workloads::Workload demo{"demo", false, buildDemo};
    const workloads::Workload *w = &demo;
    if (argc > 1) {
        w = workloads::findWorkload(argv[1]);
        if (!w) {
            std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
            return 1;
        }
    }

    harness::Experiment exp;
    const int core = 16; // a small core register file
    std::printf("workload: %s\n", w->name.c_str());

    harness::CompileOptions base;
    base.level = opt::OptLevel::Ilp;
    base.rc = harness::baseConfigFor(w->isFp, core);
    base.machine = harness::Experiment::machineFor(4);

    harness::CompileOptions with_rc = base;
    with_rc.rc = harness::rcConfigFor(w->isFp, core);

    harness::CompileOptions unlimited = base;
    unlimited.rc = core::RcConfig::unlimited();

    harness::RunOutcome rb = exp.measured(*w, base);
    harness::RunOutcome rr = exp.measured(*w, with_rc);
    harness::RunOutcome ru = exp.measured(*w, unlimited);

    std::printf("4-issue, 2-cycle loads, %d core registers:\n", core);
    std::printf("  without RC : %10llu cycles  (%llu instrs, "
                "%llu spill ops)\n",
                (unsigned long long)rb.cycles,
                (unsigned long long)rb.instructions,
                (unsigned long long)rb.compiled.spillOps);
    std::printf("  with RC    : %10llu cycles  (%llu instrs, "
                "%llu connects)\n",
                (unsigned long long)rr.cycles,
                (unsigned long long)rr.instructions,
                (unsigned long long)rr.compiled.connectOps);
    std::printf("  unlimited  : %10llu cycles\n",
                (unsigned long long)ru.cycles);
    std::printf("  RC speedup over base file: %.3fx  "
                "(unlimited: %.3fx)\n",
                (double)rb.cycles / (double)rr.cycles,
                (double)rb.cycles / (double)ru.cycles);
    std::printf("  checksum: %d (verified against interpreter)\n",
                rr.result);
    return 0;
}
